"""Sim-scheduled time-series metrics in tidy rows.

:class:`MetricsSampler` records ``(t_s, metric, scope, value)`` rows at
a configurable simulated period.  The sampling *loop* lives in
:class:`~repro.scenarios.session.SimulationSession` (it owns the DES
clock and is the only module that may schedule processes); this module
only reads.  Every probe is duck-typed attribute access — no imports
from the rest of the package — and strictly **observation-only**: a
sampled run's outcome is bit-identical to an unsampled one, which the
differential telemetry tests pin down.

Metrics sampled by :meth:`MetricsSampler.sample`:

* ``inflight_transfers`` (scope ``@all``) — transfers currently
  occupying links in the time-resolved engine;
* ``link_utilisation`` (scope = region shard, or ``@trunk``) — sum of
  currently allocated rates over the shard's materialised links divided
  by their total capacity: the per-region trunk-load signal;
* ``cache_used_bytes`` / ``cache_occupancy`` (scope ``@all``) — bytes
  resident across all device caches, and that as a fraction of total
  capacity;
* ``gossip_staleness`` (scope ``@all``) — ``1 - coverage``: the mean
  fraction of true replica holders *missing* from members' gossip
  views.  Coverage walks members × tracked digests, so on very large
  swarms prefer a long period (the cost is per *sample*, not per
  event).
"""

from __future__ import annotations

import csv
import io
from typing import Any, Dict, List, Optional, Tuple

#: Column order of the tidy rows (and of the CSV export).
METRICS_SCHEMA = ("t_s", "metric", "scope", "value")

#: Scope label for swarm-wide (non-regional) series.
ALL_SCOPE = "@all"


class MetricsSampler:
    """Tidy time-series sink with engine/cache/gossip probes."""

    def __init__(self, period_s: float, label: str = "") -> None:
        if period_s <= 0:
            raise ValueError(f"period_s must be > 0, got {period_s}")
        self.period_s = period_s
        self.label = label
        self._rows: List[Tuple[float, str, str, float]] = []

    # -- recording ------------------------------------------------------
    def record(
        self, t_s: float, metric: str, scope: str, value: float
    ) -> None:
        self._rows.append((t_s, metric, scope, float(value)))

    def sample(
        self,
        t_s: float,
        engine: Any = None,
        caches: Optional[Dict[str, Any]] = None,
        discovery: Any = None,
        index: Any = None,
    ) -> None:
        """Take one snapshot of every probe whose subject is present."""
        if engine is not None:
            self.record(
                t_s, "inflight_transfers", ALL_SCOPE,
                len(engine.active_transfers),
            )
            rate_by_shard: Dict[str, float] = {}
            capacity_by_shard: Dict[str, float] = {}
            for link in engine.links():
                capacity_by_shard[link.shard] = (
                    capacity_by_shard.get(link.shard, 0.0)
                    + link.capacity_mbps
                )
                allocated = sum(
                    transfer.rate_mbps
                    for transfer in link.transfers.values()
                )
                rate_by_shard[link.shard] = (
                    rate_by_shard.get(link.shard, 0.0) + allocated
                )
            for shard in sorted(capacity_by_shard):
                self.record(
                    t_s, "link_utilisation", shard,
                    rate_by_shard[shard] / capacity_by_shard[shard],
                )
        if caches:
            used = sum(cache.used_bytes for cache in caches.values())
            capacity = sum(cache.capacity_bytes for cache in caches.values())
            self.record(t_s, "cache_used_bytes", ALL_SCOPE, used)
            if capacity > 0:
                self.record(
                    t_s, "cache_occupancy", ALL_SCOPE, used / capacity
                )
        if discovery is not None and index is not None:
            self.record(
                t_s, "gossip_staleness", ALL_SCOPE,
                1.0 - discovery.coverage(index),
            )

    # -- introspection / export ----------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    def rows(self) -> List[Dict[str, Any]]:
        """The tidy rows as dicts in :data:`METRICS_SCHEMA` order."""
        return [
            dict(zip(METRICS_SCHEMA, row)) for row in self._rows
        ]

    def series(self, metric: str, scope: str = ALL_SCOPE) -> List[
        Tuple[float, float]
    ]:
        """``(t_s, value)`` pairs of one metric/scope series."""
        return [
            (t, value)
            for t, name, s, value in self._rows
            if name == metric and s == scope
        ]

    def csv_text(self) -> str:
        """The rows as CSV with a :data:`METRICS_SCHEMA` header."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(METRICS_SCHEMA)
        writer.writerows(self._rows)
        return buffer.getvalue()

    def write_csv(self, path) -> None:
        with open(path, "w", newline="") as handle:
            handle.write(self.csv_text())


def merged_csv(samplers: List[MetricsSampler]) -> str:
    """CSV of several samplers with a leading ``session`` column."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(("session",) + METRICS_SCHEMA)
    for sampler in samplers:
        for row in sampler._rows:
            writer.writerow((sampler.label,) + row)
    return buffer.getvalue()
