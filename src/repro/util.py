"""Small shared helpers with no dependencies on the rest of the package.

Currently: nearest-match suggestions for user-facing name errors.  The
helper started life inside :func:`repro.scenarios.spec.with_overrides`
(bad ``--set`` paths) and is shared verbatim by the lint CLI's unknown
``--rule`` / suppression-comment diagnostics — one suggestion voice
everywhere a typo can reach the user.
"""

from __future__ import annotations

import difflib
from typing import Sequence


def did_you_mean(name: str, candidates: Sequence[str]) -> str:
    """`` (did you mean ...?)`` for the closest candidate, or ``""``.

    Returns a suffix ready to append to an error message; empty when
    nothing is close enough (cutoff 0.4, same as difflib's default
    neighbourhood but permissive enough for dotted paths).
    """
    matches = difflib.get_close_matches(name, list(candidates), n=1, cutoff=0.4)
    return f" (did you mean {matches[0]!r}?)" if matches else ""
