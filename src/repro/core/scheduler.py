"""Schedulers: DEEP's Nash sweep and the shared scheduling driver.

Every scheduler in this library walks the application in topological
order, asks the :class:`~repro.core.costs.CostTable` for the current
microservice's cost matrix, picks a (registry, device) cell by its own
policy, and commits the choice to the shared
:class:`~repro.core.costs.SchedulerState` (which updates image caches,
storage, and congestion info for the next microservice).

:class:`DeepScheduler` picks cells by computing Nash equilibria of the
per-microservice game (Sec. III-E) with a configurable solver.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..game.fictitious_play import fictitious_play
from ..game.lemke_howson import DegenerateGameError, lemke_howson_all
from ..game.normal_form import Equilibrium
from ..game.pure import pure_equilibria
from ..game.support_enumeration import all_equilibria
from ..model.application import Application
from ..model.metrics import CostRecord
from .costs import CostMatrix, CostTable, SchedulerState
from .environment import Environment
from .games import NO_PENALTIES, PenaltyWeights, microservice_game, select_equilibrium
from .placement import PlacementError, PlacementPlan


class NashSolver(enum.Enum):
    """Which equilibrium computation DEEP uses (ablation A3)."""

    PURE = "pure"
    SUPPORT_ENUMERATION = "support-enumeration"
    LEMKE_HOWSON = "lemke-howson"
    FICTITIOUS_PLAY = "fictitious-play"


@dataclass
class ScheduleResult:
    """A plan plus the model's predictions for it."""

    plan: PlacementPlan
    records: List[CostRecord]
    total_energy_j: float
    total_completion_s: float
    #: per-microservice equilibrium count (diagnostics; empty for
    #: non-game schedulers).
    equilibria_found: Dict[str, int] = field(default_factory=dict)

    def record_of(self, service: str) -> CostRecord:
        for record in self.records:
            if record.service == service:
                return record
        raise KeyError(service)


class SchedulerBase:
    """Topological-sweep driver; subclasses implement :meth:`choose`."""

    name = "base"

    def choose(
        self, costs: CostMatrix, state: SchedulerState, env: Environment
    ) -> Tuple[int, int]:
        """Return (registry_index, device_index) into the cost matrix."""
        raise NotImplementedError

    #: Subclasses that reason over the P2P tier set this so the cost
    #: table folds peer-sourced deployment times into ``Td``.
    peer_transfers = False

    #: Optional live :class:`~repro.sim.transfers.TransferEngine`:
    #: contention-aware schedulers attach one so deployment estimates
    #: reflect current link utilisation instead of nominal ``size/BW``.
    engine = None

    #: Peer holders a chunked multi-source pull may stream from in
    #: parallel; 1 (the default) keeps the single-fastest-holder ``Td``
    #: estimate bit-for-bit.
    chunk_sources = 1

    def schedule(self, app: Application, env: Environment) -> ScheduleResult:
        """Produce a full plan for ``app`` in ``env``."""
        table = CostTable(
            app,
            env,
            peer_transfers=self.peer_transfers,
            engine=self.engine,
            chunk_sources=self.chunk_sources,
        )
        state = SchedulerState()
        plan = PlacementPlan(application=app.name)
        records: List[CostRecord] = []
        diagnostics: Dict[str, int] = {}
        for name in app.topological_order():
            costs = table.matrix(name, state)
            if not costs.any_feasible():
                raise PlacementError(
                    f"no feasible (registry, device) for {name!r} in "
                    f"{app.name!r}"
                )
            g, d = self.choose(costs, state, env)
            if not costs.feasible[g, d]:
                raise PlacementError(
                    f"{type(self).__name__} chose infeasible cell "
                    f"({costs.registries[g]}, {costs.devices[d]}) for {name!r}"
                )
            registry = costs.registries[g]
            device = costs.devices[d]
            record = table.record(name, registry, device, state)
            via = table.transfer_source(name, registry, device, state)
            plan.assign(name, registry, device, via=via)
            state.commit(
                app.service(name),
                registry,
                device,
                record.times.completion_s,
                via=via,
            )
            records.append(record)
            diagnostics[name] = getattr(self, "_last_equilibria", 0)
        return ScheduleResult(
            plan=plan,
            records=records,
            total_energy_j=sum(r.energy.total_j for r in records),
            total_completion_s=sum(r.times.completion_s for r in records),
            equilibria_found=diagnostics,
        )


class DeepScheduler(SchedulerBase):
    """The paper's contribution: Nash-game (registry, device) selection.

    Parameters
    ----------
    solver:
        Equilibrium algorithm.  ``PURE`` is the fast path (always
        sufficient for coordination-structured payoffs); the mixed
        solvers are exercised in the ablations.
    penalties:
        Dilemma-inducing penalty weights; defaults to the mild tension
        described in :mod:`repro.core.games`.
    """

    name = "deep"

    def __init__(
        self,
        solver: NashSolver = NashSolver.SUPPORT_ENUMERATION,
        penalties: PenaltyWeights = PenaltyWeights(),
    ) -> None:
        self.solver = solver
        self.penalties = penalties
        self._last_equilibria = 0

    def _equilibria(self, game) -> List[Equilibrium]:
        if self.solver is NashSolver.PURE:
            return pure_equilibria(game)
        if self.solver is NashSolver.SUPPORT_ENUMERATION:
            return all_equilibria(game)
        if self.solver is NashSolver.LEMKE_HOWSON:
            try:
                return lemke_howson_all(game)
            except DegenerateGameError:
                return pure_equilibria(game)
        result = fictitious_play(game, iterations=2000)
        return [result.equilibrium(game)] if result.converged else []

    def choose(
        self, costs: CostMatrix, state: SchedulerState, env: Environment
    ) -> Tuple[int, int]:
        game = microservice_game(costs, state, env, self.penalties)
        equilibria = self._equilibria(game)
        # Pure equilibria always exist here (energy games are
        # coordination-like after the sentinel patch); if a mixed-only
        # solver missed them, fall back to the exhaustive pure search.
        if not equilibria:
            equilibria = pure_equilibria(game)
        self._last_equilibria = len(equilibria)
        return select_equilibrium(game, equilibria, costs)


class CacheAffinityScheduler(SchedulerBase):
    """Peer-aware cache-affinity scheduling for the P2P tier.

    Scores every feasible cell by completion time, discounted where
    image bytes are already nearby: a full ``local_weight`` discount
    when the image is resident on the device (``Td`` is already zero,
    the discount additionally rewards reusing warm nodes over spreading
    pulls), and a ``peer_weight`` discount when a committed peer with a
    device channel holds it (the swarm serves the pull at LAN speed).
    ``peer_transfers`` is on, so the underlying cost matrix already
    prices peer-sourced deployments into ``Td`` — the discounts bias
    *placement* toward layer-sharing devices on top of that.

    Attaching a live :class:`~repro.sim.transfers.TransferEngine`
    closes the loop with the time-resolved transfer layer: deployment
    estimates in the cost matrix use the engine's *current* fair-share
    link rates (a congested channel prices higher than an idle one),
    and the peer-affinity discount is withheld from seeders that are
    already at their concurrent-upload budget — a saturated peer is no
    peer at all.

    ``chunk_sources > 1`` prices peer-sourced deployments the way a
    chunked multi-source pull actually lands them — at the aggregate
    fair-share rate of the k best reachable holders (see
    :class:`~repro.core.costs.CostTable`).  The saturation rule is
    already chunk-friendly: the peer-affinity discount survives as
    long as *any* reachable holder is below its upload budget, which
    is precisely the condition under which a chunked pull can route
    around saturated seeders.
    """

    name = "cache-affinity"
    peer_transfers = True

    def __init__(
        self,
        local_weight: float = 0.3,
        peer_weight: float = 0.15,
        engine=None,
        chunk_sources: int = 1,
    ) -> None:
        if not 0.0 <= local_weight < 1.0 or not 0.0 <= peer_weight < 1.0:
            raise ValueError("affinity weights must be in [0, 1)")
        if chunk_sources < 1:
            raise ValueError(f"chunk_sources must be >= 1, got {chunk_sources}")
        self.local_weight = local_weight
        self.peer_weight = peer_weight
        self.engine = engine
        self.chunk_sources = chunk_sources

    def _usable_peer(self, peer: str, device: str, env: Environment) -> bool:
        if not env.network.has_device_channel(peer, device):
            return False
        return self.engine is None or self.engine.can_upload(peer)

    def choose(
        self, costs: CostMatrix, state: SchedulerState, env: Environment
    ) -> Tuple[int, int]:
        best: Optional[Tuple[int, int]] = None
        best_score = float("inf")
        for d, device in enumerate(costs.devices):
            feasible_g = np.flatnonzero(costs.feasible[:, d])
            if feasible_g.size == 0:
                continue
            if state.is_cached(device, costs.image):
                discount = 1.0 - self.local_weight
            elif any(
                self._usable_peer(peer, device, env)
                for peer in state.peer_holders(costs.image, exclude=device)
            ):
                discount = 1.0 - self.peer_weight
            else:
                discount = 1.0
            for g in feasible_g:
                score = float(costs.completion_s[g, d]) * discount
                if score < best_score:
                    best_score = score
                    best = (int(g), d)
        if best is None:  # pragma: no cover - schedule() pre-checks feasibility
            raise PlacementError(f"no feasible cell for {costs.service!r}")
        return best
