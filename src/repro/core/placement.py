"""Placement plans: the output of every scheduler.

A plan maps each microservice to the pair the paper's problem
definition optimises over — ``regist(m_i) = r_g`` and
``sched(m_i) = d_j`` — plus helpers to compute the Table III
distribution percentages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from ..model.application import Application


class PlacementError(ValueError):
    """A plan is inconsistent with its application or infeasible."""


@dataclass(frozen=True)
class Assignment:
    """One microservice's deployment decision.

    ``via`` records where the deployment bytes actually come from:
    ``"registry:<name>"`` (the paper's two-tier pull), ``"peer:<dev>"``
    (the P2P tier serves the image from another device's cache), or
    ``"cached"`` (already resident, zero transfer).  Empty for plans
    produced without source tracking.
    """

    service: str
    registry: str
    device: str
    via: str = ""


@dataclass
class PlacementPlan:
    """Complete schedule of an application.

    Iteration order is the order assignments were made (topological for
    every scheduler in this library), which is also the execution order
    used by the orchestrator's sequential mode.
    """

    application: str
    assignments: Dict[str, Assignment] = field(default_factory=dict)

    def assign(
        self, service: str, registry: str, device: str, via: str = ""
    ) -> Assignment:
        if service in self.assignments:
            raise PlacementError(f"{service!r} assigned twice")
        assignment = Assignment(
            service=service, registry=registry, device=device, via=via
        )
        self.assignments[service] = assignment
        return assignment

    def __len__(self) -> int:
        return len(self.assignments)

    def __contains__(self, service: object) -> bool:
        return service in self.assignments

    def __iter__(self) -> Iterator[Assignment]:
        return iter(self.assignments.values())

    def device_of(self, service: str) -> str:
        """``sched(m_i)``."""
        return self._get(service).device

    def registry_of(self, service: str) -> str:
        """``regist(m_i)``."""
        return self._get(service).registry

    def _get(self, service: str) -> Assignment:
        try:
            return self.assignments[service]
        except KeyError:
            raise PlacementError(
                f"{service!r} not in plan for {self.application!r}"
            ) from None

    def devices(self) -> Mapping[str, str]:
        """service → device mapping (what the cost model's ``Tc`` needs)."""
        return {name: a.device for name, a in self.assignments.items()}

    def covers(self, app: Application) -> bool:
        """True when every microservice of ``app`` is assigned."""
        return set(self.assignments) == set(app.microservices)

    def validate_against(self, app: Application) -> None:
        """Raise :class:`PlacementError` unless the plan covers ``app``.

        Extra assignments (services not in the app) are also an error.
        """
        missing = set(app.microservices) - set(self.assignments)
        extra = set(self.assignments) - set(app.microservices)
        if missing or extra:
            raise PlacementError(
                f"plan/application mismatch for {app.name!r}: "
                f"missing={sorted(missing)}, extra={sorted(extra)}"
            )

    # ------------------------------------------------------------------
    # Table III views
    # ------------------------------------------------------------------
    def distribution(self) -> Dict[Tuple[str, str], int]:
        """(device, registry) → number of microservices."""
        counts: Dict[Tuple[str, str], int] = {}
        for a in self.assignments.values():
            key = (a.device, a.registry)
            counts[key] = counts.get(key, 0) + 1
        return counts

    def distribution_percent(self) -> Dict[Tuple[str, str], float]:
        """(device, registry) → share of microservices in percent.

        Matches Table III's cells, e.g. ``("small", "regional") → 66.7``.
        """
        total = len(self.assignments)
        if total == 0:
            return {}
        return {
            key: 100.0 * count / total
            for key, count in self.distribution().items()
        }

    def registry_share(self, registry: str) -> float:
        """Fraction (0–1) of microservices pulled from ``registry``."""
        if not self.assignments:
            return 0.0
        hits = sum(1 for a in self.assignments.values() if a.registry == registry)
        return hits / len(self.assignments)

    def peer_share(self) -> float:
        """Fraction (0–1) of deployments served by the P2P tier."""
        if not self.assignments:
            return 0.0
        hits = sum(
            1 for a in self.assignments.values() if a.via.startswith("peer:")
        )
        return hits / len(self.assignments)

    def source_counts(self) -> Dict[str, int]:
        """Transfer-source label → number of assignments using it."""
        counts: Dict[str, int] = {}
        for a in self.assignments.values():
            label = a.via.split(":", 1)[0] if a.via else "unknown"
            counts[label] = counts.get(label, 0) + 1
        return counts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PlacementPlan({self.application!r}, n={len(self.assignments)})"
