"""Cost tables: the ``CT`` / ``EC`` tensors a scheduler optimises over.

For one microservice and the current scheduler state,
:meth:`CostTable.matrix` evaluates the paper's equations for every
(registry, device) pair and returns aligned numpy arrays — energy,
completion time, and a feasibility mask — ready to become a game's
payoff matrices.  The evaluation is cache-aware: images already pulled
onto a device cost zero deployment time there.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set, Tuple, TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.transfers import TransferEngine

from ..model.application import Application, Microservice
from ..model.metrics import (
    CostRecord,
    EnergyBreakdown,
    PhaseTimes,
    energy_breakdown,
    phase_times,
)
from ..model.units import gb_to_bytes, gb_to_mb
from .environment import Environment


@dataclass
class SchedulerState:
    """Mutable state threaded through a topological scheduling sweep.

    Tracks, per device: which images are resident (whole-image
    granularity — the paper's model), how many storage bytes they
    occupy, and accumulated busy seconds; per registry: bytes served.
    These feed the cache-aware ``Td`` and the congestion penalties.
    """

    cached_images: Dict[str, Set[str]] = field(default_factory=dict)
    storage_used_bytes: Dict[str, int] = field(default_factory=dict)
    busy_s: Dict[str, float] = field(default_factory=dict)
    registry_bytes: Dict[str, int] = field(default_factory=dict)
    upstream_devices: Dict[str, str] = field(default_factory=dict)

    def is_cached(self, device: str, image: str) -> bool:
        return image in self.cached_images.get(device, set())

    def peer_holders(self, image: str, exclude: str = "") -> List[str]:
        """Devices (other than ``exclude``) already holding ``image``.

        These are the candidate P2P sources a peer-aware deployment can
        pull from instead of a registry.  Sorted for determinism.
        """
        return sorted(
            device
            for device, images in self.cached_images.items()
            if device != exclude and image in images
        )

    def commit(
        self,
        service: Microservice,
        registry: str,
        device: str,
        completion_s: float,
        via: str = "",
    ) -> None:
        """Record the consequences of one assignment.

        ``via`` is the transfer-source label (``peer:<dev>`` when the
        P2P tier serves the image): peer-served deployments occupy the
        device's storage but do not add to the registry's served-bytes
        congestion account — the registry never moved those bytes.
        """
        images = self.cached_images.setdefault(device, set())
        if service.image not in images:
            images.add(service.image)
            size = gb_to_bytes(service.size_gb)
            self.storage_used_bytes[device] = (
                self.storage_used_bytes.get(device, 0) + size
            )
            if not via.startswith("peer:"):
                self.registry_bytes[registry] = (
                    self.registry_bytes.get(registry, 0) + size
                )
        self.busy_s[device] = self.busy_s.get(device, 0.0) + completion_s
        self.upstream_devices[service.name] = device

    def free_storage_bytes(self, env: Environment) -> Dict[str, int]:
        """Per-device remaining storage given committed images."""
        out: Dict[str, int] = {}
        for dev in env.fleet:
            capacity = gb_to_bytes(dev.spec.storage_gb)
            out[dev.name] = capacity - self.storage_used_bytes.get(dev.name, 0)
        return out


@dataclass(frozen=True)
class CostMatrix:
    """Aligned cost arrays for one microservice.

    ``energy_j[g, d]`` and ``completion_s[g, d]`` are indexed by the
    ``registries`` / ``devices`` label lists; infeasible cells hold
    ``+inf`` and are False in ``feasible``.
    """

    service: str
    registries: List[str]
    devices: List[str]
    energy_j: np.ndarray
    completion_s: np.ndarray
    feasible: np.ndarray
    #: Image the service deploys (lets cache-affinity schedulers score
    #: peer/local residency without re-deriving it from the app).
    image: str = ""

    def any_feasible(self) -> bool:
        return bool(self.feasible.any())

    def best_cell(self) -> Tuple[int, int]:
        """Indices of the feasible minimum-energy cell."""
        if not self.any_feasible():
            raise ValueError(f"no feasible cell for {self.service!r}")
        masked = np.where(self.feasible, self.energy_j, np.inf)
        return np.unravel_index(int(np.argmin(masked)), masked.shape)  # type: ignore[return-value]

    def cell(self, registry: str, device: str) -> Tuple[float, float]:
        """(energy_j, completion_s) of a named cell."""
        g = self.registries.index(registry)
        d = self.devices.index(device)
        return float(self.energy_j[g, d]), float(self.completion_s[g, d])


class CostTable:
    """Evaluates the paper's cost equations against scheduler state.

    Parameters
    ----------
    app / env:
        The application DAG and deployment environment.
    peer_transfers:
        When True, the deployment term ``Td`` additionally considers
        pulling the image from a *peer device* already holding it
        (P2P tier): ``Td = Size / max(BW_gj, BW_kj)`` over committed
        holders ``k`` with a channel to the target.  Off by default so
        the paper's two-tier numbers are reproduced unchanged.
    engine:
        Optional live :class:`~repro.sim.transfers.TransferEngine`.
        When given, peer-vs-registry deployment estimates use the
        engine's *current* fair-share link rates instead of nominal
        analytic ``Size/BW`` — a congested seeder or saturated
        registry egress stops looking attractive the moment it is
        busy.  Off by default (analytic estimates, unchanged numbers).
    chunk_sources:
        How many peer holders a chunked multi-source pull may draw
        from in parallel.  At the default 1 the peer ``Td`` is the
        single fastest holder (bit-for-bit the historical estimate);
        at k > 1 it prices a
        :class:`~repro.registry.chunks.ChunkSwarmPlanner`-style
        transfer — the image moving at the *aggregate* fair-share rate
        of the k best reachable holders, the way chunks actually land.
    """

    def __init__(
        self,
        app: Application,
        env: Environment,
        peer_transfers: bool = False,
        engine: Optional["TransferEngine"] = None,
        chunk_sources: int = 1,
    ) -> None:
        if chunk_sources < 1:
            raise ValueError(f"chunk_sources must be >= 1, got {chunk_sources}")
        self.app = app
        self.env = env
        self.peer_transfers = peer_transfers
        self.engine = engine
        self.chunk_sources = chunk_sources

    # ------------------------------------------------------------------
    # the P2P deployment term
    # ------------------------------------------------------------------
    def peer_deploy_seconds(
        self, state: SchedulerState, service: Microservice, device_name: str
    ) -> Tuple[float, str]:
        """Fastest peer-sourced deployment of ``service`` onto a device.

        Returns ``(seconds, peer)``; ``(inf, "")`` when no committed
        holder of the image has a channel to ``device_name``.  With a
        live engine the per-peer estimate reflects the seeder's
        *current* contended rate, so a peer mid-upload scores worse
        than an idle one.
        """
        best_s = float("inf")
        best_peer = ""
        size_mb = gb_to_mb(service.cold_pull_gb)
        per_peer: List[Tuple[float, str]] = []
        for peer in state.peer_holders(service.image, exclude=device_name):
            if not self.env.network.has_device_channel(peer, device_name):
                continue
            if self.engine is not None:
                seconds = self.engine.estimated_transfer_s(
                    peer, device_name, size_mb
                )
            else:
                channel = self.env.network.device_channel(peer, device_name)
                seconds = channel.transfer_time_s(size_mb)
            per_peer.append((seconds, peer))
            if seconds < best_s:
                best_s, best_peer = seconds, peer
        if self.chunk_sources > 1 and len(per_peer) > 1 and size_mb > 0:
            # Multi-source Td: a chunked pull streams from the k best
            # holders at once, so the image moves at their *aggregate*
            # rate.  Each holder's effective rate is backed out of its
            # single-source estimate (which already reflects live
            # fair-share contention when an engine is attached); the
            # fastest holder stays the nominal "peer" of the estimate.
            # The sum can only be realised up to the destination's
            # shared downlink — k holders cannot deliver k× the NIC.
            top = sorted(per_peer)[: self.chunk_sources]
            aggregate_rate = sum(
                size_mb * 8.0 / seconds for seconds, _peer in top if seconds > 0
            )
            downlink = self.env.network.downlink_mbps(device_name)
            if downlink is not None:
                aggregate_rate = min(aggregate_rate, downlink)
            if aggregate_rate > 0:
                best_s = min(best_s, size_mb * 8.0 / aggregate_rate)
        return best_s, best_peer

    def registry_deploy_seconds(
        self, registry: str, device_name: str, size_gb: float
    ) -> float:
        """Registry-sourced ``Td`` — engine-aware when one is attached."""
        if self.engine is not None:
            return self.engine.estimated_transfer_s(
                registry, device_name, gb_to_mb(size_gb), src_is_registry=True
            )
        return self.env.network.deployment_time_s(registry, device_name, size_gb)

    def transfer_source(
        self,
        name: str,
        registry: str,
        device_name: str,
        state: Optional[SchedulerState] = None,
    ) -> str:
        """Where the deployment bytes of one assignment come from.

        ``"cached"`` (already resident), ``"peer:<device>"`` (P2P tier
        beats the registry channel), or ``"registry:<name>"``.
        """
        state = state or SchedulerState()
        service = self.app.service(name)
        if state.is_cached(device_name, service.image):
            return "cached"
        if self.peer_transfers:
            peer_s, peer = self.peer_deploy_seconds(state, service, device_name)
            registry_s = self.registry_deploy_seconds(
                registry, device_name, service.cold_pull_gb
            )
            if peer and peer_s < registry_s:
                return f"peer:{peer}"
        return f"registry:{registry}"

    def record(
        self,
        name: str,
        registry: str,
        device_name: str,
        state: Optional[SchedulerState] = None,
    ) -> CostRecord:
        """Full :class:`CostRecord` for one concrete (m, r, d) choice."""
        state = state or SchedulerState()
        service = self.app.service(name)
        device = self.env.device(device_name)
        incoming = [
            (state.upstream_devices[flow.src], flow.size_mb)
            for flow in self.app.in_flows(name)
            if flow.src in state.upstream_devices
        ]
        cached = state.is_cached(device_name, service.image)
        times = phase_times(
            service, device, self.env.network, registry, incoming, cached
        )
        if not cached and self.engine is not None:
            # Contention-aware Td: the registry path priced at the
            # engine's current fair-share rate, not nominal bandwidth.
            times = PhaseTimes(
                self.registry_deploy_seconds(
                    registry, device_name, service.cold_pull_gb
                ),
                times.transfer_s,
                times.compute_s,
            )
        if self.peer_transfers and not cached:
            peer_s, peer = self.peer_deploy_seconds(state, service, device_name)
            if peer and peer_s < times.deploy_s:
                times = PhaseTimes(peer_s, times.transfer_s, times.compute_s)
        scale = self.env.intensity(name, device_name)
        energy = energy_breakdown(times, device, scale)
        return CostRecord(
            service=name,
            registry=registry,
            device=device_name,
            times=times,
            energy=energy,
        )

    def matrix(
        self,
        name: str,
        state: Optional[SchedulerState] = None,
    ) -> CostMatrix:
        """Energy/CT over every (registry, device) pair for ``name``."""
        state = state or SchedulerState()
        service = self.app.service(name)
        registries = self.env.registry_names()
        devices = self.env.device_names()
        feasible_devices = set(
            self.env.feasible_devices(service, state.free_storage_bytes(self.env))
        )
        # An image already on a device stays feasible there even if the
        # *free* storage no longer fits it (it is not re-downloaded).
        for dev in devices:
            if state.is_cached(dev, service.image):
                spec = self.env.device(dev).spec
                if (
                    spec.cores >= service.requirements.cores
                    and spec.memory_gb >= service.requirements.memory_gb
                ):
                    feasible_devices.add(dev)

        shape = (len(registries), len(devices))
        energy = np.full(shape, np.inf)
        completion = np.full(shape, np.inf)
        feasible = np.zeros(shape, dtype=bool)
        for d, dev in enumerate(devices):
            if dev not in feasible_devices:
                continue
            allowed = set(self.env.feasible_registries(service, dev))
            for g, reg in enumerate(registries):
                if reg not in allowed:
                    continue
                rec = self.record(name, reg, dev, state)
                energy[g, d] = rec.energy.total_j
                completion[g, d] = rec.times.completion_s
                feasible[g, d] = True
        return CostMatrix(
            service=name,
            registries=registries,
            devices=devices,
            energy_j=energy,
            completion_s=completion,
            feasible=feasible,
            image=service.image,
        )
