"""The deployment environment a scheduler reasons over.

Bundles the model-level view of Sec. III — devices ``D``, registries
``R``, and the bandwidth matrix — together with image availability
(which registries host which image) and the calibrated per-workload
compute intensities.  Behavioural objects (live ``Registry`` instances,
device runtimes) live in the testbed/orchestrator layers; schedulers
only ever touch this model-level facade, which keeps them trivially
testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from ..devices.executor import IntensityFn, unit_intensity
from ..model.application import Application, Microservice
from ..model.device import Device, DeviceFleet
from ..model.network import NetworkModel
from ..model.registry import RegistryCatalog


def _always_available(_registry: str, _image: str) -> bool:
    return True


@dataclass
class Environment:
    """Model-level deployment environment.

    Attributes
    ----------
    fleet:
        The devices ``D``.
    network:
        Device↔device, registry→device, and ingress channels.
    registries:
        The registries ``R`` (model-level descriptors).
    availability:
        ``(registry_name, image) → bool`` — whether the registry hosts
        the image.  Defaults to everything-everywhere.
    intensity:
        ``(service_name, device_name) → compute power multiplier``
        fitted by the calibration.
    """

    fleet: DeviceFleet
    network: NetworkModel
    registries: RegistryCatalog
    availability: Callable[[str, str], bool] = _always_available
    intensity: IntensityFn = unit_intensity

    # ------------------------------------------------------------------
    # feasibility
    # ------------------------------------------------------------------
    def feasible_devices(
        self,
        service: Microservice,
        free_storage_bytes: Optional[Mapping[str, int]] = None,
    ) -> List[str]:
        """Devices satisfying ``req(m_i)``.

        ``free_storage_bytes`` injects the *current* storage headroom
        per device (scheduler state); without it the check uses the
        empty-device capacity.
        """
        from ..model.units import gb_to_bytes

        feasible: List[str] = []
        need_image = gb_to_bytes(service.size_gb)
        need_scratch = gb_to_bytes(service.requirements.storage_gb)
        for device in self.fleet:
            spec = device.spec
            if spec.cores < service.requirements.cores:
                continue
            if spec.memory_gb < service.requirements.memory_gb:
                continue
            if free_storage_bytes is not None:
                headroom = free_storage_bytes.get(
                    device.name, gb_to_bytes(spec.storage_gb)
                )
            else:
                headroom = gb_to_bytes(spec.storage_gb)
            if headroom < need_image + need_scratch:
                continue
            feasible.append(device.name)
        return feasible

    def feasible_registries(self, service: Microservice, device: str) -> List[str]:
        """Registries hosting the image with a channel to ``device``."""
        return [
            reg.name
            for reg in self.registries
            if self.availability(reg.name, service.image)
            and self.network.has_registry_channel(reg.name, device)
        ]

    def device(self, name: str) -> Device:
        return self.fleet[name]

    def registry_names(self) -> List[str]:
        return self.registries.names()

    def device_names(self) -> List[str]:
        return self.fleet.names()
