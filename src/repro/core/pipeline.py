"""The DEEP pipeline of Figure 1: analysis → scheduling.

The architecture couples three components ahead of deployment:

1. **microservice requirement analysis** — can each ``req(m_i)`` be
   satisfied, and by which devices;
2. **dataflow dependency analysis** — the DAG's stages (the
   synchronisation barriers) and per-edge payloads;
3. **nash-game scheduling** — the :class:`~repro.core.scheduler.DeepScheduler`
   sweep producing a :class:`~repro.core.placement.PlacementPlan`.

:func:`plan_deployment` runs all three and returns a bundle the
orchestrator can execute directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..model.application import Application
from .environment import Environment
from .placement import PlacementError
from .scheduler import DeepScheduler, ScheduleResult, SchedulerBase


@dataclass(frozen=True)
class RequirementReport:
    """Outcome of requirement analysis for one microservice."""

    service: str
    feasible_devices: List[str]
    feasible_registries: Dict[str, List[str]]

    @property
    def satisfiable(self) -> bool:
        return any(self.feasible_registries.get(d) for d in self.feasible_devices)


@dataclass(frozen=True)
class DependencyReport:
    """Outcome of dataflow dependency analysis."""

    order: List[str]
    stages: List[List[str]]
    barrier_count: int
    total_dataflow_mb: float


def analyze_requirements(app: Application, env: Environment) -> List[RequirementReport]:
    """Figure 1's requirement-analysis box.

    Raises :class:`PlacementError` when any microservice is
    unsatisfiable — failing before scheduling, with a precise message,
    is the component's job.
    """
    reports: List[RequirementReport] = []
    for name in app.topological_order():
        service = app.service(name)
        devices = env.feasible_devices(service)
        registries = {d: env.feasible_registries(service, d) for d in devices}
        report = RequirementReport(
            service=name, feasible_devices=devices, feasible_registries=registries
        )
        if not report.satisfiable:
            raise PlacementError(
                f"requirement analysis: {name!r} (cores="
                f"{service.requirements.cores}, mem="
                f"{service.requirements.memory_gb} GB, image="
                f"{service.size_gb} GB) unsatisfiable on fleet "
                f"{env.device_names()}"
            )
        reports.append(report)
    return reports


def analyze_dependencies(app: Application) -> DependencyReport:
    """Figure 1's dependency-analysis box."""
    stages = app.stages()
    return DependencyReport(
        order=app.topological_order(),
        stages=stages,
        barrier_count=max(0, len(stages) - 1),
        total_dataflow_mb=app.total_dataflow_mb(),
    )


@dataclass
class DeploymentBundle:
    """Everything the orchestrator needs to roll out an application."""

    app: Application
    env: Environment
    requirements: List[RequirementReport]
    dependencies: DependencyReport
    schedule: ScheduleResult


def plan_deployment(
    app: Application,
    env: Environment,
    scheduler: Optional[SchedulerBase] = None,
) -> DeploymentBundle:
    """Run the full DEEP pipeline (default scheduler: DEEP itself)."""
    requirements = analyze_requirements(app, env)
    dependencies = analyze_dependencies(app)
    schedule = (scheduler or DeepScheduler()).schedule(app, env)
    schedule.plan.validate_against(app)
    return DeploymentBundle(
        app=app,
        env=env,
        requirements=requirements,
        dependencies=dependencies,
        schedule=schedule,
    )
