"""DEEP's core: cost tables, per-microservice games, the Nash scheduler,
the paper's baselines, and the Figure-1 pipeline."""

from .baselines import (
    FixedRegistryScheduler,
    GreedyEnergyScheduler,
    GreedyTimeScheduler,
    RandomScheduler,
    RoundRobinScheduler,
)
from .costs import CostMatrix, CostTable, SchedulerState
from .environment import Environment
from .games import (
    NO_PENALTIES,
    PenaltyWeights,
    build_penalties,
    microservice_game,
    select_equilibrium,
)
from .pipeline import (
    DependencyReport,
    DeploymentBundle,
    RequirementReport,
    analyze_dependencies,
    analyze_requirements,
    plan_deployment,
)
from .placement import Assignment, PlacementError, PlacementPlan
from .scheduler import (
    CacheAffinityScheduler,
    DeepScheduler,
    NashSolver,
    ScheduleResult,
    SchedulerBase,
)

__all__ = [
    "Assignment",
    "CacheAffinityScheduler",
    "CostMatrix",
    "CostTable",
    "DeepScheduler",
    "DependencyReport",
    "DeploymentBundle",
    "Environment",
    "FixedRegistryScheduler",
    "GreedyEnergyScheduler",
    "GreedyTimeScheduler",
    "NO_PENALTIES",
    "NashSolver",
    "PenaltyWeights",
    "PlacementError",
    "PlacementPlan",
    "RandomScheduler",
    "RequirementReport",
    "RoundRobinScheduler",
    "ScheduleResult",
    "SchedulerBase",
    "SchedulerState",
    "analyze_dependencies",
    "analyze_requirements",
    "build_penalties",
    "microservice_game",
    "plan_deployment",
    "select_equilibrium",
]
