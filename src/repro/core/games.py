"""Per-microservice game construction (the paper's Sec. III-E).

For each microservice DEEP plays a two-player game: the **registry
selector** (row player) picks ``r_g``, the **device selector** (column
player) picks ``d_j``.  Base payoffs for both are the negated energy
``-EC(m_i, r_g, d_j)`` — the cooperative objective — perturbed by
asymmetric penalties that create the prisoner's-dilemma tension the
paper invokes:

* the registry player pays for *bandwidth contention*: joules-equivalent
  proportional to the bytes its registry has already served this
  schedule (a busy hub link is privately unattractive), and
* the device player pays for *occupancy*: proportional to the busy
  seconds already committed to the device at its static power (idling
  on a loaded device is privately unattractive).

With zero penalty weights the game is a pure coordination game whose
best equilibrium is exactly the joint energy minimum; with positive
weights players can rationally deviate to individually cheaper but
jointly worse cells — the cooperate/defect structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..game.dilemma import energy_game
from ..game.normal_form import Equilibrium, NormalFormGame
from ..model.units import BYTES_PER_GB
from .costs import CostMatrix, SchedulerState
from .environment import Environment


@dataclass(frozen=True)
class PenaltyWeights:
    """Strengths of the dilemma-inducing penalties.

    ``registry_contention`` is joules per gigabyte already served by a
    registry; ``device_occupancy`` scales each device's committed busy
    time (at its static power) into a joule penalty.  Defaults keep the
    tension mild so DEEP tracks the energy optimum, as in the paper.
    """

    registry_contention_j_per_gb: float = 0.1
    device_occupancy_factor: float = 0.01

    def __post_init__(self) -> None:
        if self.registry_contention_j_per_gb < 0:
            raise ValueError("registry_contention_j_per_gb must be >= 0")
        if self.device_occupancy_factor < 0:
            raise ValueError("device_occupancy_factor must be >= 0")


#: Penalties disabled: the game degenerates to joint minimisation.
NO_PENALTIES = PenaltyWeights(0.0, 0.0)


def build_penalties(
    costs: CostMatrix,
    state: SchedulerState,
    env: Environment,
    weights: PenaltyWeights,
) -> Tuple[np.ndarray, np.ndarray]:
    """Row (registry) and column (device) penalty matrices in joules."""
    shape = costs.energy_j.shape
    row_penalty = np.zeros(shape)
    col_penalty = np.zeros(shape)
    for g, registry in enumerate(costs.registries):
        served_gb = state.registry_bytes.get(registry, 0) / BYTES_PER_GB
        row_penalty[g, :] = weights.registry_contention_j_per_gb * served_gb
    for d, device in enumerate(costs.devices):
        busy = state.busy_s.get(device, 0.0)
        static = env.device(device).power.static_watts
        col_penalty[:, d] = weights.device_occupancy_factor * busy * static
    return row_penalty, col_penalty


def microservice_game(
    costs: CostMatrix,
    state: Optional[SchedulerState] = None,
    env: Optional[Environment] = None,
    weights: PenaltyWeights = NO_PENALTIES,
) -> NormalFormGame:
    """The (registry × device) game for one microservice.

    Without ``state``/``env`` (or with :data:`NO_PENALTIES`) this is
    the plain negated-energy coordination game.
    """
    if weights != NO_PENALTIES:
        if state is None or env is None:
            raise ValueError("penalties require scheduler state and environment")
        row_penalty, col_penalty = build_penalties(costs, state, env, weights)
    else:
        row_penalty = col_penalty = None
    return energy_game(
        costs.energy_j,
        row_labels=costs.registries,
        col_labels=costs.devices,
        row_penalty=row_penalty,
        col_penalty=col_penalty,
    )


def select_equilibrium(
    game: NormalFormGame,
    equilibria: List[Equilibrium],
    costs: CostMatrix,
) -> Tuple[int, int]:
    """Pick the deployment cell from a set of equilibria.

    Selection rule (deterministic):

    1. among equilibria, minimise *expected energy* under the joint
       mixed profile (the system objective);
    2. resolve the winner to its modal pure profile;
    3. if that cell is infeasible (possible for mixed equilibria over
       penalty-distorted payoffs), fall back to the feasible cell with
       the highest joint probability; as a last resort use the
       feasible energy minimum.
    """
    if not equilibria:
        return costs.best_cell()
    finite_energy = np.where(costs.feasible, costs.energy_j, np.nan)

    def expected_energy(eq: Equilibrium) -> float:
        joint = np.outer(eq.row_strategy, eq.col_strategy)
        masked = np.where(np.isnan(finite_energy), 0.0, finite_energy)
        infeasible_mass = joint[~costs.feasible].sum()
        # Mass on infeasible cells is penalised hard so such equilibria
        # only win when nothing better exists.
        return float((joint * masked).sum() + infeasible_mass * 1e12)

    best = min(equilibria, key=expected_energy)
    g, d = best.pure_profile()
    if costs.feasible[g, d]:
        return g, d
    joint = np.outer(best.row_strategy, best.col_strategy)
    joint[~costs.feasible] = -1.0
    g, d = np.unravel_index(int(np.argmax(joint)), joint.shape)
    if costs.feasible[g, d]:
        return int(g), int(d)
    return costs.best_cell()
