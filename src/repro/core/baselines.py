"""Baseline schedulers: the paper's comparators plus ablation policies.

The evaluation (Fig. 3b) compares DEEP against two deployment methods:

* **exclusively Docker Hub** — every image pulled from the hub,
* **exclusively regional** — every image pulled from the regional
  registry,

with devices still chosen to minimise energy (the paper varies only
the registry dimension).  The extra policies (greedy time, round
robin, random) are ours, used by the ablation benchmarks to place
DEEP's deltas in context.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..sim.rng import RngRegistry, default_registry
from .costs import CostMatrix, SchedulerState
from .environment import Environment
from .placement import PlacementError
from .scheduler import SchedulerBase


class FixedRegistryScheduler(SchedulerBase):
    """Pin the registry; choose the min-energy feasible device.

    This is the paper's "exclusively X" deployment method for
    ``registry_name = X``.
    """

    def __init__(self, registry_name: str) -> None:
        if not registry_name:
            raise ValueError("registry_name must be non-empty")
        self.registry_name = registry_name
        self.name = f"exclusively-{registry_name}"

    def choose(
        self, costs: CostMatrix, state: SchedulerState, env: Environment
    ) -> Tuple[int, int]:
        try:
            g = costs.registries.index(self.registry_name)
        except ValueError:
            raise PlacementError(
                f"registry {self.registry_name!r} not in environment "
                f"({costs.registries})"
            ) from None
        row = np.where(costs.feasible[g], costs.energy_j[g], np.inf)
        if not np.isfinite(row).any():
            raise PlacementError(
                f"{costs.service!r}: no feasible device when pinned to "
                f"{self.registry_name!r}"
            )
        return g, int(np.argmin(row))


class GreedyEnergyScheduler(SchedulerBase):
    """Joint argmin of energy over all (registry, device) cells.

    Equivalent to DEEP with zero penalties: the cooperative optimum of
    each per-microservice game.  Separating it out gives the ablations
    a penalty-free reference.
    """

    name = "greedy-energy"

    def choose(
        self, costs: CostMatrix, state: SchedulerState, env: Environment
    ) -> Tuple[int, int]:
        return costs.best_cell()


class GreedyTimeScheduler(SchedulerBase):
    """Joint argmin of completion time (latency-first, HEFT-flavoured)."""

    name = "greedy-time"

    def choose(
        self, costs: CostMatrix, state: SchedulerState, env: Environment
    ) -> Tuple[int, int]:
        masked = np.where(costs.feasible, costs.completion_s, np.inf)
        return np.unravel_index(int(np.argmin(masked)), masked.shape)  # type: ignore[return-value]


class RoundRobinScheduler(SchedulerBase):
    """Cycle devices in fleet order; registry = min energy given device."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def choose(
        self, costs: CostMatrix, state: SchedulerState, env: Environment
    ) -> Tuple[int, int]:
        n = len(costs.devices)
        for offset in range(n):
            d = (self._next + offset) % n
            column = np.where(costs.feasible[:, d], costs.energy_j[:, d], np.inf)
            if np.isfinite(column).any():
                self._next = (d + 1) % n
                return int(np.argmin(column)), d
        raise PlacementError(f"{costs.service!r}: no feasible device at all")


class RandomScheduler(SchedulerBase):
    """Uniformly random feasible cell (seeded; the chaos baseline)."""

    name = "random"

    def __init__(self, rng: Optional[RngRegistry] = None) -> None:
        registry = rng if rng is not None else default_registry()
        self._stream = registry.stream("random-scheduler")

    def choose(
        self, costs: CostMatrix, state: SchedulerState, env: Environment
    ) -> Tuple[int, int]:
        cells = np.argwhere(costs.feasible)
        pick = cells[int(self._stream.integers(len(cells)))]
        return int(pick[0]), int(pick[1])
