"""Monitoring: the event log and metrics of Figure 1's monitor box.

"A monitoring system logs the service executions on the computing
devices" (Sec. III-F).  :class:`Monitor` collects timestamped events
(pod phase changes, pulls, stage barriers) and counter/gauge metrics,
and renders a human-readable execution log — the simulated analogue of
the paper's ``date``-stamped shell scripts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class Event:
    """One timestamped log line."""

    t_s: float
    kind: str
    subject: str
    detail: str = ""


class Monitor:
    """Append-only event log plus simple counters and gauges."""

    def __init__(self) -> None:
        self._events: List[Event] = []
        # Per-kind index, maintained on append: events_of() is a hot
        # query in orchestration tests and dashboards, and the log can
        # hold one line per pod phase change on large runs.
        self._by_kind: Dict[str, List[Event]] = {}
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------
    def log(self, t_s: float, kind: str, subject: str, detail: str = "") -> Event:
        if self._events and t_s < self._events[-1].t_s - 1e-9:
            raise ValueError(
                f"event at {t_s} precedes last event at {self._events[-1].t_s}"
            )
        event = Event(t_s=t_s, kind=kind, subject=subject, detail=detail)
        self._events.append(event)
        self._by_kind.setdefault(kind, []).append(event)
        return event

    @property
    def events(self) -> List[Event]:
        return list(self._events)

    def events_of(self, kind: str) -> List[Event]:
        """Events of one kind, in log (append) order — O(matches)."""
        return list(self._by_kind.get(kind, ()))

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def count(self, name: str, value: float = 1.0) -> None:
        self._counters[name] = self._counters.get(name, 0.0) + value

    def gauge(self, name: str, value: float) -> None:
        self._gauges[name] = value

    def counter(self, name: str) -> float:
        return self._counters.get(name, 0.0)

    def counters(self) -> Dict[str, float]:
        """All counters (e.g. ``bytes_pulled``, ``bytes_from_peers``,
        ``bytes_from.<source>``) by name."""
        return dict(self._counters)

    def gauges(self) -> Dict[str, float]:
        return dict(self._gauges)

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def render(self, limit: Optional[int] = None) -> str:
        """The execution log as text (most recent last)."""
        events = self._events if limit is None else self._events[-limit:]
        lines = [
            f"[{e.t_s:10.2f}s] {e.kind:<12} {e.subject:<24} {e.detail}"
            for e in events
        ]
        return "\n".join(lines)
