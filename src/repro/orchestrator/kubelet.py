"""Kubelet: the per-node agent that runs pods.

Wraps :meth:`~repro.devices.executor.DeviceRuntime.run_microservice`
with the pod lifecycle (pending → pulling → running → succeeded) and
monitoring events, mirroring what a kubelet does when it receives a
bound pod: resolve the image, pull if the policy requires, start the
container, report status.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from ..devices.executor import DeviceRuntime, ExecutionRecord
from ..model.application import Microservice
from ..registry.base import Registry
from ..registry.p2p import SourceKind
from ..registry.repository import ManifestNotFound
from .monitoring import Monitor
from .objects import ImagePullPolicy, Pod, PodPhase


class Kubelet:
    """One node's pod runner."""

    def __init__(self, runtime: DeviceRuntime, monitor: Monitor) -> None:
        self.runtime = runtime
        self.monitor = monitor

    @property
    def node_name(self) -> str:
        return self.runtime.name

    def run_pod(
        self,
        pod: Pod,
        service: Microservice,
        registry: Registry,
        incoming: Iterable[Tuple[str, float]] = (),
    ):
        """DES process executing ``pod``; returns the ExecutionRecord.

        ``ImagePullPolicy.ALWAYS`` invalidates the cached image first
        (forcing a re-pull), matching Kubernetes semantics; the default
        ``IF_NOT_PRESENT`` reuses the device cache — the behaviour the
        paper's deployment-time model assumes.
        """
        sim = self.runtime.sim
        if pod.node != self.node_name:
            pod.transition(sim.now, PodPhase.FAILED, "wrong node")
            raise ValueError(
                f"pod {pod.name!r} bound to {pod.node!r}, kubelet on "
                f"{self.node_name!r}"
            )
        self.monitor.log(sim.now, "pod-bound", pod.name, f"node={self.node_name}")
        pod.transition(sim.now, PodPhase.PULLING)
        self.monitor.log(
            sim.now, "pull-start", pod.name, f"{pod.image} from {pod.registry}"
        )
        if pod.pull_policy is ImagePullPolicy.ALWAYS:
            manifest = registry.resolve(pod.image, self.runtime.device.arch)
            for digest in manifest.layer_digests():
                self.runtime.cache.remove(digest)

        try:
            record = yield from self.runtime.run_microservice(
                service, registry, pod.image, incoming
            )
        except (ManifestNotFound, KeyError) as exc:
            pod.transition(sim.now, PodPhase.FAILED, str(exc))
            self.monitor.log(sim.now, "pod-failed", pod.name, str(exc))
            self.monitor.count("pods_failed")
            raise

        # The runtime finished all three phases; replay the lifecycle
        # timestamps into the pod record.
        pull_end = record.start_s + record.times.deploy_s
        pod.transition(pull_end, PodPhase.RUNNING)
        self.monitor.log(
            pull_end,
            "pull-done",
            pod.name,
            f"{record.pull.bytes_transferred} B "
            f"({'hit' if record.cache_hit else 'miss'})",
        )
        pod.transition(record.end_s, PodPhase.SUCCEEDED)
        self.monitor.log(
            record.end_s,
            "pod-succeeded",
            pod.name,
            f"ct={record.completion_s:.1f}s ec={record.energy_j:.1f}J",
        )
        self.monitor.count("pods_succeeded")
        self.monitor.count("bytes_pulled", record.pull.bytes_transferred)
        # Per-source byte accounting: experiments read peer savings off
        # the monitor instead of re-deriving them from pull plans.
        self.monitor.count(
            "bytes_from_peers", getattr(record.pull, "bytes_from_peers", 0)
        )
        # Stale discovery entries this pull tripped over (gossip views
        # pointing at evicted layers or departed holders); 0 on the
        # two-tier path and under omniscient discovery.
        self.monitor.count(
            "stale_peer_misses", getattr(record.pull, "stale_peer_misses", 0)
        )
        # Bytes a mid-flight fallback threw away (whole-layer restarts
        # on the single-source path, lost chunks / losing endgame
        # duplicates on the chunked path) and duplicate chunk requests
        # the chunked endgame issued; 0 on analytic pulls.
        self.monitor.count(
            "bytes_wasted", getattr(record.pull, "bytes_wasted", 0)
        )
        self.monitor.count(
            "chunk_endgame_dupes",
            getattr(record.pull, "chunk_endgame_dupes", 0),
        )
        for source, count in sorted(self._bytes_by_source(record).items()):
            self.monitor.count(f"bytes_from.{source}", count)
        return record

    @staticmethod
    def _bytes_by_source(record: ExecutionRecord) -> dict:
        """Transferred bytes keyed by the serving source's name.

        Three-tier pulls break down per plan layer (peer device names
        and registry names alike); two-tier pulls attribute everything
        to the single registry that served them.
        """
        pull = record.pull
        plan = getattr(pull, "plan", None)
        out: dict = {}
        if plan is not None:
            for layer in plan.layers:
                if layer.kind is not SourceKind.LOCAL:
                    out[layer.source] = out.get(layer.source, 0) + layer.size_bytes
        elif pull.bytes_transferred:
            out[pull.registry] = pull.bytes_transferred
        return out
