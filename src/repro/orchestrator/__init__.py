"""Kubernetes-stand-in orchestration: cluster, kubelets, pod lifecycle,
stage-barrier rollout, and execution monitoring."""

from .cluster import Cluster, ClusterError
from .controller import (
    ApplicationController,
    DeviceEnergyReading,
    ExecutionMode,
    ExecutionReport,
)
from .kubelet import Kubelet
from .monitoring import Event, Monitor
from .objects import ImagePullPolicy, Pod, PodPhase

__all__ = [
    "ApplicationController",
    "Cluster",
    "ClusterError",
    "DeviceEnergyReading",
    "Event",
    "ExecutionMode",
    "ExecutionReport",
    "ImagePullPolicy",
    "Kubelet",
    "Monitor",
    "Pod",
    "PodPhase",
]
