"""Deployment objects: the orchestrator's Kubernetes-flavoured nouns.

The paper couples DEEP "loosely … with Docker registries and an
orchestrator, such as the open-source Kubernetes" (Sec. III-F).  Our
stand-in models the part the evaluation needs: a *pod* per microservice
execution, with an image reference, a pinned node, a pull policy, and a
phase lifecycle that the monitoring component logs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..registry.base import ImageReference


class PodPhase(enum.Enum):
    """Lifecycle of one pod (subset of Kubernetes' phases + pulling)."""

    PENDING = "pending"
    PULLING = "pulling"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"


class ImagePullPolicy(enum.Enum):
    """When the kubelet pulls (mirrors Kubernetes semantics)."""

    IF_NOT_PRESENT = "IfNotPresent"
    ALWAYS = "Always"


_VALID_TRANSITIONS = {
    PodPhase.PENDING: {PodPhase.PULLING, PodPhase.FAILED},
    PodPhase.PULLING: {PodPhase.RUNNING, PodPhase.FAILED},
    PodPhase.RUNNING: {PodPhase.SUCCEEDED, PodPhase.FAILED},
    PodPhase.SUCCEEDED: set(),
    PodPhase.FAILED: set(),
}


@dataclass
class Pod:
    """One scheduled microservice execution.

    Attributes
    ----------
    name:
        Pod name (``<app>-<service>``).
    service:
        Microservice name this pod runs.
    image:
        Registry reference to pull.
    registry:
        Registry name serving the image.
    node:
        Device the pod is pinned to (DEEP schedules, the orchestrator
        obeys — like a pod with a fixed ``nodeName``).
    """

    name: str
    service: str
    image: ImageReference
    registry: str
    node: str
    pull_policy: ImagePullPolicy = ImagePullPolicy.IF_NOT_PRESENT
    phase: PodPhase = PodPhase.PENDING
    transitions: List[Tuple[float, PodPhase]] = field(default_factory=list)
    failure_reason: Optional[str] = None

    def transition(self, now_s: float, phase: PodPhase, reason: str = "") -> None:
        """Move to ``phase``; invalid transitions raise."""
        if phase not in _VALID_TRANSITIONS[self.phase]:
            raise ValueError(
                f"pod {self.name!r}: illegal transition "
                f"{self.phase.value} -> {phase.value}"
            )
        self.phase = phase
        self.transitions.append((now_s, phase))
        if phase is PodPhase.FAILED:
            self.failure_reason = reason or "unknown"

    @property
    def terminal(self) -> bool:
        return self.phase in (PodPhase.SUCCEEDED, PodPhase.FAILED)

    def phase_at(self, t_s: float) -> PodPhase:
        """Phase the pod was in at simulation time ``t_s``."""
        current = PodPhase.PENDING
        for ts, phase in self.transitions:
            if ts <= t_s:
                current = phase
            else:
                break
        return current
