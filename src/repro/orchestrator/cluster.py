"""Cluster state: nodes (device runtimes) and registries, by name.

The cluster is the orchestrator's registry of *where things can run*
and *where images come from* — the two lookups the kubelet needs.  One
cluster owns one simulator; all device runtimes share its clock.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from ..devices.executor import DeviceRuntime, IntensityFn, unit_intensity
from ..model.device import Device
from ..model.network import NetworkModel
from ..registry.base import Registry
from ..registry.client import PullPolicy
from ..registry.p2p import P2PRegistry
from ..sim.engine import Simulator
from ..sim.transfers import TransferEngine, TransferModel


class ClusterError(RuntimeError):
    """Cluster-level misconfiguration."""


class Cluster:
    """Nodes + registries sharing one simulation clock."""

    def __init__(
        self,
        sim: Optional[Simulator] = None,
        pull_policy: PullPolicy = PullPolicy.WHOLE_IMAGE,
        intensity: IntensityFn = unit_intensity,
        p2p: Optional[P2PRegistry] = None,
        transfer_model: TransferModel = TransferModel.ANALYTIC,
        engine: Optional[TransferEngine] = None,
    ) -> None:
        self.sim = sim if sim is not None else Simulator()
        self.pull_policy = pull_policy
        self.intensity = intensity
        self.p2p = p2p
        if p2p is not None:
            # The discovery backend runs its processes (gossip
            # anti-entropy rounds) on the cluster's clock; binding is a
            # no-op for the omniscient default.
            p2p.swarm.discovery.bind(self.sim)
        self.transfer_model = transfer_model
        #: The fleet-wide shared-bandwidth engine (time-resolved mode).
        #: Created lazily at first node registration when not injected,
        #: so all kubelet pulls contend on one set of links.
        self.engine = engine
        self._nodes: Dict[str, DeviceRuntime] = {}
        self._registries: Dict[str, Registry] = {}

    # ------------------------------------------------------------------
    # nodes
    # ------------------------------------------------------------------
    def register_node(self, device: Device, network: NetworkModel) -> DeviceRuntime:
        """Join a device to the cluster (kubelet registration)."""
        if device.name in self._nodes:
            raise ClusterError(f"node {device.name!r} already registered")
        if self.transfer_model is TransferModel.TIME_RESOLVED and self.engine is None:
            self.engine = TransferEngine(self.sim, network)
        runtime = DeviceRuntime(
            sim=self.sim,
            device=device,
            network=network,
            pull_policy=self.pull_policy,
            intensity=self.intensity,
            p2p=self.p2p,
            transfer_model=self.transfer_model,
            engine=self.engine,
        )
        self._nodes[device.name] = runtime
        return runtime

    def node(self, name: str) -> DeviceRuntime:
        try:
            return self._nodes[name]
        except KeyError:
            raise ClusterError(f"unknown node {name!r}") from None

    def nodes(self) -> List[DeviceRuntime]:
        return list(self._nodes.values())

    def node_names(self) -> List[str]:
        return list(self._nodes)

    # ------------------------------------------------------------------
    # registries
    # ------------------------------------------------------------------
    def register_registry(self, registry: Registry) -> None:
        if registry.name in self._registries:
            raise ClusterError(f"registry {registry.name!r} already registered")
        self._registries[registry.name] = registry

    def registry(self, name: str) -> Registry:
        try:
            return self._registries[name]
        except KeyError:
            raise ClusterError(f"unknown registry {name!r}") from None

    def registries(self) -> List[Registry]:
        return list(self._registries.values())
