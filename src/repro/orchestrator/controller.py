"""Application controller: rolls out a placement plan on the cluster.

Two execution modes:

* **SEQUENTIAL** — microservices execute one at a time in topological
  order: the paper's benchmark mode ("non-concurrently", Sec. III-D),
  under which per-microservice energies sum exactly to ``EC_total``;
* **STAGE_PARALLEL** — microservices within a DAG stage run
  concurrently across devices, with a barrier between stages (the two
  synchronisation barriers of Sec. IV-B); per-device execution remains
  serialised by the device lock.

After the rollout the controller reads both energy meters — the RAPL
stand-in on amd64 nodes, the wall-plug sampler on arm64 — and
reconciles them against the analytic ledger, reproducing the paper's
measurement methodology end to end.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.placement import PlacementPlan
from ..devices.executor import ExecutionRecord
from ..energy.accounting import EnergyLedger, Reconciliation, reconcile
from ..energy.powermeter import PowerMeter
from ..energy.rapl import RaplMeter
from ..model.application import Application
from ..model.device import Arch
from .cluster import Cluster
from .kubelet import Kubelet
from .monitoring import Monitor
from .objects import ImagePullPolicy, Pod


class ExecutionMode(enum.Enum):
    SEQUENTIAL = "sequential"
    STAGE_PARALLEL = "stage-parallel"


@dataclass
class DeviceEnergyReading:
    """One device's meter reading vs the analytic prediction."""

    device: str
    meter: str
    measured_j: float
    analytic_j: float

    @property
    def reconciliation(self) -> Reconciliation:
        return reconcile(self.analytic_j, self.measured_j)


@dataclass
class ExecutionReport:
    """Everything produced by one application rollout."""

    application: str
    mode: ExecutionMode
    plan: PlacementPlan
    records: List[ExecutionRecord]
    pods: List[Pod]
    ledger: EnergyLedger
    makespan_s: float
    readings: List[DeviceEnergyReading]
    monitor: Monitor

    @property
    def total_energy_j(self) -> float:
        return self.ledger.total_j()

    @property
    def measured_energy_j(self) -> float:
        return sum(r.measured_j for r in self.readings)

    def record_of(self, service: str) -> ExecutionRecord:
        for record in self.records:
            if record.service == service:
                return record
        raise KeyError(service)


class ApplicationController:
    """Executes placement plans against a cluster."""

    def __init__(self, cluster: Cluster, monitor: Optional[Monitor] = None) -> None:
        self.cluster = cluster
        self.monitor = monitor if monitor is not None else Monitor()
        self._kubelets: Dict[str, Kubelet] = {
            runtime.name: Kubelet(runtime, self.monitor)
            for runtime in cluster.nodes()
        }

    def _kubelet(self, node: str) -> Kubelet:
        if node not in self._kubelets:  # node registered after init
            self._kubelets[node] = Kubelet(self.cluster.node(node), self.monitor)
        return self._kubelets[node]

    def _make_pod(
        self,
        app: Application,
        plan: PlacementPlan,
        service: str,
        references,
        pull_policy: ImagePullPolicy,
    ) -> Pod:
        assignment = plan.assignments[service]
        image = references[(assignment.registry, app.service(service).image)]
        return Pod(
            name=f"{app.name}-{service}",
            service=service,
            image=image,
            registry=assignment.registry,
            node=assignment.device,
            pull_policy=pull_policy,
        )

    def execute(
        self,
        app: Application,
        plan: PlacementPlan,
        references,
        mode: ExecutionMode = ExecutionMode.SEQUENTIAL,
        pull_policy: ImagePullPolicy = ImagePullPolicy.IF_NOT_PRESENT,
    ) -> ExecutionReport:
        """Roll out ``plan`` and run the application to completion.

        ``references`` maps ``(registry_name, image)`` to the pull
        reference (the testbed provides this, mirroring Table I).
        """
        plan.validate_against(app)
        sim = self.cluster.sim
        start_s = sim.now
        records: List[ExecutionRecord] = []
        pods: List[Pod] = []

        def run_one(service: str):
            pod = self._make_pod(app, plan, service, references, pull_policy)
            pods.append(pod)
            kubelet = self._kubelet(pod.node)
            incoming = [
                (plan.device_of(flow.src), flow.size_mb)
                for flow in app.in_flows(service)
            ]
            registry = self.cluster.registry(pod.registry)
            record = yield from kubelet.run_pod(
                pod, app.service(service), registry, incoming
            )
            records.append(record)
            return record

        if mode is ExecutionMode.SEQUENTIAL:
            def driver():
                for service in app.topological_order():
                    yield from run_one(service)
            done = sim.process(driver())
        else:
            def driver():
                for index, stage in enumerate(app.stages()):
                    self.monitor.log(
                        sim.now, "stage-start", app.name, f"stage={index}"
                    )
                    barrier = sim.all_of(
                        [sim.process(run_one(s)) for s in stage]
                    )
                    yield barrier
                    self.monitor.log(
                        sim.now, "stage-barrier", app.name, f"stage={index}"
                    )
            done = sim.process(driver())

        sim.run()
        if not done.triggered or not done.ok:
            raise RuntimeError(
                f"rollout of {app.name!r} did not complete cleanly"
            )

        ledger = EnergyLedger()
        ledger.extend(records)

        # Read the meters the way the paper does: pyRAPL on Intel,
        # wall-plug sampling on ARM, one window per microservice
        # execution (their shell scripts time each service), summed per
        # device.  Per-service windows also keep RAPL deltas well below
        # the 32-bit counter wrap.
        readings: List[DeviceEnergyReading] = []
        analytic_by_device = ledger.by_device()
        measured_by_device: Dict[str, float] = {}
        for record in records:
            runtime = self.cluster.node(record.device)
            if runtime.device.arch is Arch.AMD64:
                rapl = RaplMeter(runtime.trace)
                measured = rapl.measure_window(
                    record.start_s, record.end_s, record.service
                ).energy_j
            else:
                meter = PowerMeter(runtime.trace, sample_hz=1.0)
                measured = meter.measure(record.start_s, record.end_s).energy_j
            measured_by_device[record.device] = (
                measured_by_device.get(record.device, 0.0) + measured
            )
        for runtime in self.cluster.nodes():
            meter_name = (
                "rapl" if runtime.device.arch is Arch.AMD64 else "power-meter"
            )
            readings.append(
                DeviceEnergyReading(
                    device=runtime.name,
                    meter=meter_name,
                    measured_j=measured_by_device.get(runtime.name, 0.0),
                    analytic_j=analytic_by_device.get(runtime.name, 0.0),
                )
            )

        return ExecutionReport(
            application=app.name,
            mode=mode,
            plan=plan,
            records=records,
            pods=pods,
            ledger=ledger,
            makespan_s=sim.now - start_s,
            readings=readings,
            monitor=self.monitor,
        )
