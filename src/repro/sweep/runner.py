"""Parallel, resumable, content-addressed sweep execution.

:func:`run_sweep` turns a :class:`~repro.sweep.spec.SweepSpec` into an
aggregate:

* cells whose content hash already has a JSON document in the results
  cache are **cache hits** — loaded, never re-run; everything else is
  executed, across a ``multiprocessing`` pool when ``workers > 1``
  (one fresh :class:`~repro.scenarios.SimulationSession` per cell
  inside a worker process, chunked dispatch to amortise fork cost);
* every completed cell is persisted immediately (atomic
  write-then-rename), so a killed sweep resumes with only the missing
  cells re-executed, and editing one grid axis re-runs only the new
  cells;
* the aggregate is built in **cell order**, not completion order —
  serial and parallel runs of the same sweep produce byte-identical
  aggregates (cells are independent seeded simulations; asserted in
  tests and the bench smoke).

Rows are tidy and flat: the cell's identity columns (variant, one
column per axis path, seed, key) followed by the flattened
:meth:`~repro.scenarios.ModeOutcome.to_dict` counters.  ``to_csv``
writes the same rows as CSV; :func:`write_bench_record` appends a
machine-readable perf record (cells/sec, worker count, cache hits) to
``BENCH_sweep.json`` so the perf trajectory is comparable across PRs.
"""

from __future__ import annotations

import csv
import json
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from ..scenarios import (
    NONDETERMINISTIC_OUTCOME_KEYS,
    ScenarioSpec,
    SimulationSession,
    canonical_json,
)
from .spec import SweepCell, SweepSpec

#: Filename of the cross-PR perf trajectory record.
BENCH_SWEEP_JSON = "BENCH_sweep.json"

#: Row columns excluded from :meth:`SweepResult.aggregate_json`: the
#: per-cell wall time plus the outcome's own wall-clock keys.  Columns
#: flattened *out of* ``engine_profile`` (``engine_profile.*``) are
#: excluded by prefix in :func:`_deterministic_row`.
NONDETERMINISTIC_ROW_COLUMNS = ("wall_ms",) + NONDETERMINISTIC_OUTCOME_KEYS


def _deterministic_row(row: Dict[str, Any]) -> Dict[str, Any]:
    """One aggregate row minus its wall-clock-dependent columns."""
    return {
        key: value
        for key, value in row.items()
        if key not in NONDETERMINISTIC_ROW_COLUMNS
        and not key.startswith("engine_profile.")
    }


def _flatten(prefix: str, value: Any, row: Dict[str, Any]) -> None:
    """Tidy a nested outcome value into dotted flat columns."""
    if isinstance(value, dict):
        for key in sorted(value):
            _flatten(f"{prefix}.{key}", value[key], row)
    else:
        row[prefix] = value


def cell_row(
    cell: SweepCell, outcome: Dict[str, Any], wall_ms: float = 0.0
) -> Dict[str, Any]:
    """One tidy aggregate row: identity columns + flat outcome +
    per-cell wall time (excluded from the byte-identity surface —
    cached cells report their *stored* execution time, so resumed rows
    equal fresh rows)."""
    row = cell.row_id()
    for key, value in outcome.items():
        _flatten(key, value, row)
    row["wall_ms"] = wall_ms
    return row


def _execute_cell(
    payload: Tuple[str, Dict[str, Any], Optional[str]],
) -> Tuple[str, Dict[str, Any], float]:
    """Worker body: one cell, one fresh session, one outcome dict.

    Runs inside a pool process (or inline when ``workers == 1``).  The
    optional marker directory receives an (empty) file per *executed*
    cell — the observable tests and CI use to prove that resumed
    sweeps only run what the cache is missing.
    """
    key, spec_dict, marker_dir = payload
    if marker_dir is not None:
        (Path(marker_dir) / key).touch()
    spec = ScenarioSpec.from_dict(spec_dict)
    started = time.perf_counter()
    outcome = SimulationSession(spec).run()
    wall_ms = (time.perf_counter() - started) * 1000.0
    return key, outcome.to_dict(), wall_ms


def _cache_path(cache_dir: Path, key: str) -> Path:
    return cache_dir / f"{key}.json"


def _load_cached(
    cache_dir: Path, key: str
) -> Optional[Tuple[Dict[str, Any], float]]:
    path = _cache_path(cache_dir, key)
    try:
        with open(path) as handle:
            document = json.load(handle)
    except FileNotFoundError:
        return None
    except (ValueError, OSError) as error:
        raise ValueError(
            f"corrupt sweep cache entry {path} ({error}); delete it to "
            f"re-run the cell"
        ) from error
    if document.get("key") != key:
        raise ValueError(
            f"sweep cache entry {path} holds key {document.get('key')!r}; "
            f"delete it to re-run the cell"
        )
    # Entries written before per-cell timing existed carry no wall_ms.
    return document["outcome"], float(document.get("wall_ms", 0.0))

def _store_cached(
    cache_dir: Path, key: str, spec_dict: Dict[str, Any],
    outcome: Dict[str, Any], wall_ms: float,
) -> None:
    """Persist one completed cell atomically (write, then rename).

    A sweep killed mid-write can never leave a truncated cell behind:
    the rename is atomic, so the cache only ever holds complete
    documents.
    """
    path = _cache_path(cache_dir, key)
    tmp = path.with_name(path.name + f".tmp{os.getpid()}")
    document = {
        "key": key, "spec": spec_dict, "outcome": outcome,
        "wall_ms": wall_ms,
    }
    with open(tmp, "w") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)
    os.replace(tmp, path)


@dataclass
class SweepStats:
    """Execution accounting of one :func:`run_sweep` call.

    ``cells`` counts the grid's declared cells; each is then exactly
    one of **executed** (ran this call), a **cache hit** (loaded from
    the on-disk results cache), or **deduped** (its content hash
    matched an earlier cell of the same grid — identical spec, one
    run, shared row).  The three are reported separately because a
    resume log that folds dedups into cache hits reads as if the disk
    cache served cells it never held.
    """

    cells: int = 0
    executed: int = 0
    cache_hits: int = 0
    deduped: int = 0
    workers: int = 1
    wall_s: float = 0.0

    @property
    def cells_per_s(self) -> float:
        return self.executed / self.wall_s if self.wall_s > 0 else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "cells": self.cells,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "deduped": self.deduped,
            "workers": self.workers,
            "wall_s": self.wall_s,
            "cells_per_s": self.cells_per_s,
        }


@dataclass
class SweepResult:
    """The aggregate of one sweep run: tidy rows plus run accounting."""

    sweep: SweepSpec
    rows: List[Dict[str, Any]] = field(default_factory=list)
    stats: SweepStats = field(default_factory=SweepStats)

    def aggregate_json(self) -> str:
        """Canonical JSON of the rows' deterministic columns.

        This is the determinism surface: serial and parallel runs —
        and cached re-runs — of the same sweep must produce the same
        bytes here.  Stats (wall time, worker count) live outside it,
        and the wall-clock row columns (``wall_ms``, ``wall_build_s``,
        ``wall_run_s``, ``engine_profile.*``) are stripped — they stay
        in :attr:`rows` and the CSV, but can never perturb identity.
        """
        return canonical_json([_deterministic_row(row) for row in self.rows])

    def to_dict(self) -> Dict[str, Any]:
        return {
            "sweep": self.sweep.to_dict(),
            "stats": self.stats.to_dict(),
            "rows": self.rows,
        }

    def to_csv(self, path: os.PathLike) -> None:
        """The rows as CSV (column order: first appearance)."""
        columns: List[str] = []
        for row in self.rows:
            for column in row:
                if column not in columns:
                    columns.append(column)
        with open(path, "w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=columns)
            writer.writeheader()
            writer.writerows(self.rows)

    def column(self, name: str) -> List[Any]:
        """One column across all rows (missing values become None)."""
        return [row.get(name) for row in self.rows]


def run_sweep(
    sweep: SweepSpec,
    cache_dir: Optional[os.PathLike] = None,
    workers: int = 1,
    chunksize: Optional[int] = None,
    marker_dir: Optional[os.PathLike] = None,
) -> SweepResult:
    """Execute (or resume) a sweep; see the module docstring.

    ``cache_dir=None`` runs everything in memory (no resume).
    ``workers`` caps the pool size; 1 executes inline in this process
    — bit-identically, which is asserted by the determinism tests.
    ``chunksize`` tunes pool dispatch (default: enough to hand every
    worker ~4 chunks, amortising fork/IPC cost over short cells).
    ``marker_dir`` makes execution observable (one file per executed
    cell).
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    started = time.perf_counter()
    cells = sweep.cells()
    cache: Optional[Path] = None
    if cache_dir is not None:
        cache = Path(cache_dir)
        cache.mkdir(parents=True, exist_ok=True)
    if marker_dir is not None:
        Path(marker_dir).mkdir(parents=True, exist_ok=True)
        marker_dir = str(marker_dir)

    # key -> (outcome dict, wall_ms of the run that produced it).
    outcomes: Dict[str, Tuple[Dict[str, Any], float]] = {}
    pending: List[SweepCell] = []
    claimed: set = set()
    for cell in cells:
        if cell.key in claimed:
            continue  # an identical cell already accounted for
        claimed.add(cell.key)
        cached = _load_cached(cache, cell.key) if cache is not None else None
        if cached is not None:
            outcomes[cell.key] = cached
        else:
            pending.append(cell)

    payloads = [
        (cell.key, cell.spec.to_dict(), marker_dir) for cell in pending
    ]
    spec_dicts = {key: spec_dict for key, spec_dict, _marker in payloads}
    n_workers = min(workers, len(payloads))
    if n_workers > 1:
        if chunksize is None:
            chunksize = max(1, len(payloads) // (n_workers * 4))
        with multiprocessing.Pool(processes=n_workers) as pool:
            # Unordered: each cell is cached the moment it completes,
            # so a kill at any point loses at most the in-flight cells.
            for key, outcome, wall_ms in pool.imap_unordered(
                _execute_cell, payloads, chunksize=chunksize
            ):
                outcomes[key] = (outcome, wall_ms)
                if cache is not None:
                    _store_cached(
                        cache, key, spec_dicts[key], outcome, wall_ms
                    )
    else:
        for payload in payloads:
            key, outcome, wall_ms = _execute_cell(payload)
            outcomes[key] = (outcome, wall_ms)
            if cache is not None:
                _store_cached(cache, key, payload[1], outcome, wall_ms)

    result = SweepResult(sweep=sweep)
    result.rows = [cell_row(cell, *outcomes[cell.key]) for cell in cells]
    result.stats = SweepStats(
        cells=len(cells),
        executed=len(payloads),
        # Distinct claimed cells the disk cache served vs duplicate
        # cells collapsed by the claimed-set dedup — folding the two
        # together used to make fresh runs of duplicate-bearing grids
        # report phantom cache hits.
        cache_hits=len(claimed) - len(payloads),
        deduped=len(cells) - len(claimed),
        workers=workers,
        wall_s=time.perf_counter() - started,
    )
    return result


def write_bench_record(
    name: str, stats: SweepStats, path: os.PathLike = BENCH_SWEEP_JSON,
    **extra: Any,
) -> Dict[str, Any]:
    """Merge one benchmark's sweep perf record into ``BENCH_sweep.json``.

    The file maps benchmark name → its latest record; existing entries
    for other benchmarks survive, so one file carries the whole perf
    trajectory across PRs.
    """
    path = Path(path)
    try:
        with open(path) as handle:
            document = json.load(handle)
        if not isinstance(document, dict):
            document = {}
    except (FileNotFoundError, ValueError):
        document = {}
    record = dict(stats.to_dict(), **extra)
    document[name] = record
    tmp = path.with_name(path.name + f".tmp{os.getpid()}")
    with open(tmp, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    return record
