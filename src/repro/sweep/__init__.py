"""The experiment-matrix runner: declarative grids over scenario specs.

Declare a grid as a :class:`SweepSpec` (base scenario × variants ×
axes × seeds), execute it with :func:`run_sweep` — parallel across
worker processes, resumable from a content-addressed on-disk results
cache — and read tidy rows off the :class:`SweepResult`::

    from repro import sweep

    result = sweep.run_sweep(
        sweep.get_sweep("gossip-transport"),
        cache_dir=".sweep-cache", workers=4,
    )
    print(result.stats.to_dict())
    result.to_csv("gossip-transport.csv")

Serial and parallel runs produce byte-identical aggregates
(``result.aggregate_json()``); re-running a finished sweep executes
zero cells.  See ``src/repro/scenarios/README.md`` (sweep section) for
the SweepSpec JSON format, the cache layout, and resume semantics.
"""

from .presets import (
    SweepPreset,
    get_sweep,
    register_sweep,
    sweep_entries,
    sweep_names,
)
from .runner import (
    BENCH_SWEEP_JSON,
    NONDETERMINISTIC_ROW_COLUMNS,
    SweepResult,
    SweepStats,
    cell_row,
    run_sweep,
    write_bench_record,
)
from .spec import SweepCell, SweepSpec, parse_axis_flags, parse_seed_flag

__all__ = [
    "BENCH_SWEEP_JSON",
    "NONDETERMINISTIC_ROW_COLUMNS",
    "SweepCell",
    "SweepPreset",
    "SweepResult",
    "SweepSpec",
    "SweepStats",
    "cell_row",
    "get_sweep",
    "parse_axis_flags",
    "parse_seed_flag",
    "register_sweep",
    "run_sweep",
    "sweep_entries",
    "sweep_names",
    "write_bench_record",
]
