"""Declarative experiment matrices over :class:`ScenarioSpec`.

Every result in this reproduction comes from running grids of closely
related scenarios — fanout × period, chunk size × swarm size, policy ×
seed.  A :class:`SweepSpec` declares such a grid as data:

* a **base** scenario — either an inline :class:`ScenarioSpec` or the
  name of a registered scenario preset,
* optional named **variants** — labelled override *bundles* for grid
  dimensions whose fields move together (e.g. a swarm-size scaling
  rule that adjusts ``n_devices``, ``n_regions`` and ``n_images`` at
  once, or a ``mode`` baseline),
* **axes** — independent dotted-path overrides, each with a value
  list, crossed with each other (the ``with_overrides`` seam),
* a **seed** list.

:meth:`SweepSpec.cells` expands ``variants × axes-product × seeds``
into concrete :class:`SweepCell`\\ s, each carrying a fully validated
:class:`ScenarioSpec` and its canonical content hash
(:meth:`ScenarioSpec.cache_key`) — the identity the runner's on-disk
results cache is addressed by.  Sweeps serialise losslessly through
:meth:`to_dict` / :meth:`from_dict`, so a grid is a JSON document the
CLI can run directly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from itertools import product
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .. import scenarios
from ..scenarios import ScenarioSpec, with_overrides
from ..scenarios.spec import _parse_override_value
from ..sim.rng import DEFAULT_SEED

#: One variant: (label, overrides as an ordered tuple of (path, value)).
Variant = Tuple[str, Tuple[Tuple[str, Any], ...]]

#: One axis: (dotted path, value tuple).
Axis = Tuple[str, Tuple[Any, ...]]


def _freeze_overrides(overrides: Any) -> Tuple[Tuple[str, Any], ...]:
    """Normalise a mapping / pair sequence to an ordered pair tuple."""
    if isinstance(overrides, Mapping):
        items = list(overrides.items())
    else:
        items = [(str(path), value) for path, value in overrides]
    seen = set()
    for path, _value in items:
        if path in seen:
            raise ValueError(f"override path {path!r} given twice")
        seen.add(path)
    return tuple((str(path), value) for path, value in items)


def _freeze_axes(axes: Any) -> Tuple[Axis, ...]:
    if isinstance(axes, Mapping):
        items = list(axes.items())
    else:
        items = list(axes)
    out: List[Axis] = []
    seen = set()
    for path, values in items:
        path = str(path)
        if path in seen:
            raise ValueError(f"axis {path!r} declared twice")
        seen.add(path)
        values = tuple(values)
        if not values:
            raise ValueError(f"axis {path!r} has no values")
        if len(set(map(repr, values))) != len(values):
            raise ValueError(f"axis {path!r} repeats a value: {values}")
        out.append((path, values))
    return tuple(out)


def _freeze_variants(variants: Any) -> Tuple[Variant, ...]:
    if isinstance(variants, Mapping):
        items = list(variants.items())
    else:
        items = list(variants)
    out: List[Variant] = []
    seen = set()
    for label, overrides in items:
        label = str(label)
        if label in seen:
            raise ValueError(f"variant {label!r} declared twice")
        seen.add(label)
        out.append((label, _freeze_overrides(overrides)))
    return tuple(out)


def parse_axis_flags(flags: Sequence[str]) -> Dict[str, Tuple[Any, ...]]:
    """Split CLI ``--axis path=v1,v2,...`` strings into an axes mapping.

    Values get the same scalar coercion as ``--set`` (``"600"`` → 600,
    ``"true"`` → True, …), so the aggregate's identity columns carry
    typed values, not strings.
    """
    axes: Dict[str, Tuple[Any, ...]] = {}
    for flag in flags:
        path, eq, raw = flag.partition("=")
        if not eq or not path.strip() or not raw.strip():
            raise ValueError(
                f"bad --axis {flag!r}; expected section.field=v1,v2,..."
            )
        axes[path.strip()] = tuple(
            _parse_override_value(part) for part in raw.split(",")
        )
    return axes


def parse_seed_flag(flag: str) -> Tuple[int, ...]:
    """``"1,2,3"`` → ``(1, 2, 3)`` (the CLI's ``--seeds`` value)."""
    try:
        return tuple(int(part) for part in flag.split(","))
    except ValueError:
        raise ValueError(
            f"bad --seeds {flag!r}; expected a comma-separated int list"
        ) from None


@dataclass(frozen=True)
class SweepCell:
    """One concrete run of a sweep: a spec, its seed, and its identity.

    ``key`` is the canonical content hash of the *spec* (seed
    included), so the same configuration reached through different
    sweeps — or through a hand-edited grid — shares one cache entry.
    """

    index: int
    variant: str
    axis_values: Tuple[Tuple[str, Any], ...]
    seed: int
    spec: ScenarioSpec
    key: str

    def row_id(self) -> Dict[str, Any]:
        """The identity columns of this cell's aggregate row."""
        row: Dict[str, Any] = {}
        if self.variant:
            row["variant"] = self.variant
        row.update(self.axis_values)
        row["seed"] = self.seed
        row["key"] = self.key
        return row


@dataclass(frozen=True)
class SweepSpec:
    """A declarative experiment matrix (see the module docstring).

    Exactly one of ``preset`` (a registered scenario preset name,
    resolved freshly at expansion) and ``base`` (an inline spec) must
    be given.  ``axes`` / ``variants`` accept mappings or pair
    sequences and are frozen to tuples; ``seeds`` defaults to the
    repo's root seed.
    """

    name: str = "sweep"
    description: str = ""
    preset: Optional[str] = None
    base: Optional[ScenarioSpec] = None
    variants: Any = ()
    axes: Any = ()
    seeds: Sequence[int] = (DEFAULT_SEED,)

    def __post_init__(self) -> None:
        if (self.preset is None) == (self.base is None):
            raise ValueError(
                "a SweepSpec needs exactly one of preset= (a scenario "
                "preset name) and base= (an inline ScenarioSpec)"
            )
        if self.preset is not None:
            scenarios.get(self.preset)  # unknown preset fails here, early
        object.__setattr__(self, "variants", _freeze_variants(self.variants))
        object.__setattr__(self, "axes", _freeze_axes(self.axes))
        seeds = tuple(int(s) for s in self.seeds)
        if not seeds:
            raise ValueError("a sweep needs at least one seed")
        if len(set(seeds)) != len(seeds):
            raise ValueError(f"seeds repeat: {seeds}")
        if any(s < 0 for s in seeds):
            raise ValueError(f"seeds must be >= 0, got {seeds}")
        object.__setattr__(self, "seeds", seeds)

    # -- expansion -------------------------------------------------------
    def base_spec(self) -> ScenarioSpec:
        if self.preset:
            return scenarios.get(self.preset)
        assert self.base is not None  # __post_init__: exactly one is set
        return self.base

    def n_cells(self) -> int:
        n_axes = 1
        for _path, values in self.axes:
            n_axes *= len(values)
        return max(1, len(self.variants)) * n_axes * len(self.seeds)

    def cells(self) -> Tuple[SweepCell, ...]:
        """The cross-product, expanded and validated.

        Order is deterministic — variants in declaration order, axes as
        nested loops (first axis outermost), seeds innermost — and is
        the aggregate's row order, independent of execution order.
        Every cell's spec passes the full :class:`ScenarioSpec`
        validation; a grid that contains one invalid combination fails
        *here*, before anything runs.
        """
        base = self.base_spec()
        variants = self.variants or (("", ()),)
        axis_paths = [path for path, _values in self.axes]
        axis_value_lists = [values for _path, values in self.axes]
        cells: List[SweepCell] = []
        for label, bundle in variants:
            for combo in product(*axis_value_lists):
                overrides = dict(bundle)
                overrides.update(zip(axis_paths, combo))
                try:
                    spec = with_overrides(base, overrides)
                except ValueError as error:
                    raise ValueError(
                        f"sweep {self.name!r} cell "
                        f"(variant={label!r}, {dict(zip(axis_paths, combo))}) "
                        f"is invalid: {error}"
                    ) from error
                for seed in self.seeds:
                    seeded = replace(spec, seed=seed)
                    cells.append(SweepCell(
                        index=len(cells),
                        variant=label,
                        axis_values=tuple(zip(axis_paths, combo)),
                        seed=seed,
                        spec=seeded,
                        key=seeded.cache_key(),
                    ))
        return tuple(cells)

    # -- serialisation ---------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A plain JSON-safe dict that :meth:`from_dict` inverts."""
        return {
            "name": self.name,
            "description": self.description,
            "preset": self.preset,
            "base": None if self.base is None else self.base.to_dict(),
            "variants": [
                [label, dict(bundle)] for label, bundle in self.variants
            ],
            "axes": [[path, list(values)] for path, values in self.axes],
            "seeds": list(self.seeds),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepSpec":
        known = {
            "name", "description", "preset", "base", "variants", "axes",
            "seeds",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown SweepSpec keys {sorted(unknown)}")
        kwargs: Dict[str, Any] = {
            key: data[key]
            for key in ("name", "description", "preset", "variants",
                        "axes", "seeds")
            if key in data and data[key] is not None
        }
        base = data.get("base")
        if base is not None:
            kwargs["base"] = ScenarioSpec.from_dict(base)
        return cls(**kwargs)
