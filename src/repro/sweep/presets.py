"""Named sweeps: the registered experiment matrices.

Mirrors the scenario preset registry one level up — a sweep preset is
a reproducible grid, ready for ``repro sweep <name>`` or
:func:`~repro.sweep.runner.run_sweep`.  The two studies the ROADMAP
deferred to the sweep engine ship here:

``replicator-policy``
    How the adaptive replicator's *policy* knobs move the
    origin-traffic / proactive-copy trade-off on the layer-sharing
    workload: demand-decay (how long demand is remembered) swept
    across two hotness-scope arms (global: one absolute threshold
    tops up every region; per-region: a fraction-of-region-peak
    cutoff that auto-scales with each region's own demand).

``gossip-transport``
    How the gossip *transport* moves the discovery realism gap:
    per-pair metadata latency (exchanged knowledge lands late, views
    lag a period plus the wire) crossed with the exchange mode
    (full push-pull payloads vs digest-summary deltas, which converge
    identically while shipping far fewer records —
    ``gossip_records_sent`` is the metered wire cost) and per-payload
    loss (seeded drops, ``payloads_lost`` metered).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from .spec import SweepSpec

SweepFactory = Callable[[], SweepSpec]


@dataclass(frozen=True)
class SweepPreset:
    """One named, registered experiment matrix."""

    name: str
    description: str
    factory: SweepFactory


_SWEEPS: Dict[str, SweepPreset] = {}


def register_sweep(
    name: str, factory: SweepFactory, *, description: str = ""
) -> None:
    """Add a sweep preset; re-registering a name is a programming error."""
    if name in _SWEEPS:
        raise ValueError(f"sweep preset {name!r} already registered")
    _SWEEPS[name] = SweepPreset(
        name=name, description=description, factory=factory
    )


def get_sweep(name: str) -> SweepSpec:
    """A fresh :class:`SweepSpec` for sweep preset ``name``."""
    if name not in _SWEEPS:
        raise KeyError(
            f"unknown sweep preset {name!r}; known sweeps: "
            f"{', '.join(sweep_names())}"
        )
    return _SWEEPS[name].factory()


def sweep_names() -> Tuple[str, ...]:
    """All registered sweep preset names, sorted."""
    return tuple(sorted(_SWEEPS))


def sweep_entries() -> Tuple[SweepPreset, ...]:
    """All sweep presets, sorted by name."""
    return tuple(_SWEEPS[name] for name in sweep_names())


# ----------------------------------------------------------------------
# the deferred ROADMAP studies
# ----------------------------------------------------------------------
register_sweep(
    "replicator-policy",
    lambda: SweepSpec(
        name="replicator-policy",
        description=(
            "adaptive-replicator policy ablation: demand-decay × "
            "hotness scope (global vs per-region) on the layer-sharing "
            "workload"
        ),
        preset="p2p",
        # Hotness scope rides the variants, not an axis: each scope
        # carries its own threshold knob.  The global arm keeps an
        # absolute cutoff (the preset's 3.0 is tuned for swarm-wide
        # scores; 1.0 keeps this workload live), while the per-region
        # arm uses the auto-scaled fraction-of-region-peak cutoff —
        # ``hot_fraction`` is only valid under per-region hotness, so
        # it cannot ride a crossed axis or a shared base bundle.
        variants={
            "global": {
                "replication.hotness": "global",
                "replication.hot_threshold": 1.0,
            },
            "per-region": {
                "replication.hotness": "per-region",
                "replication.hot_fraction": 0.6,
            },
        },
        axes={
            "replication.decay": (0.0, 0.5, 0.9),
        },
        seeds=(20250323, 7),
    ),
    description=(
        "demand-decay × global/per-region hotness: what the replicator "
        "policy costs and saves"
    ),
)

register_sweep(
    "gossip-transport",
    lambda: SweepSpec(
        name="gossip-transport",
        description=(
            "gossip-transport ablation: per-pair metadata latency × "
            "exchange mode (full push-pull vs digest-summary deltas) "
            "under moderate churn"
        ),
        preset="p2p-gossip",
        axes={
            "discovery.gossip_latency_s": (0.0, 30.0, 120.0),
            "discovery.gossip_exchange": ("push-pull", "digest-summary"),
            "discovery.gossip_loss_rate": (0.0, 0.1, 0.3),
        },
        seeds=(20250323, 7),
    ),
    description=(
        "metadata latency × push-pull/digest-summary exchange: what the "
        "gossip wire model costs"
    ),
)
