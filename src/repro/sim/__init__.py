"""Deterministic discrete-event simulation kernel used by the testbed."""

from .churn import ChurnConfig, ChurnEvent, ChurnProcess
from .engine import AllOf, Interrupt, Process, Simulator
from .events import Event, EventQueue, Timeout
from .resources import Resource
from .rng import DEFAULT_SEED, RngRegistry, default_registry

__all__ = [
    "AllOf",
    "ChurnConfig",
    "ChurnEvent",
    "ChurnProcess",
    "DEFAULT_SEED",
    "Event",
    "EventQueue",
    "Interrupt",
    "Process",
    "Resource",
    "RngRegistry",
    "Simulator",
    "Timeout",
    "default_registry",
]
