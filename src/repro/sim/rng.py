"""Named, seeded random streams.

Every stochastic component of the reproduction (benchmark jitter,
synthetic workload generation, tie-breaking) draws from a *named*
stream derived deterministically from a root seed, so that adding a new
consumer never perturbs the draws of existing ones — the classic
independent-streams discipline from parallel simulation practice.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


class RngRegistry:
    """Factory of independent :class:`numpy.random.Generator` streams.

    Each stream is keyed by a string name; its seed is derived by
    hashing ``(root_seed, name)`` so streams are uncorrelated and
    stable across runs and platforms.
    """

    def __init__(self, root_seed: int = 0) -> None:
        if root_seed < 0:
            raise ValueError(f"root seed must be >= 0, got {root_seed}")
        self._root_seed = int(root_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def root_seed(self) -> int:
        return self._root_seed

    def derive_seed(self, name: str) -> int:
        """Deterministic 64-bit seed for stream ``name``."""
        digest = hashlib.sha256(
            f"{self._root_seed}:{name}".encode("utf-8")
        ).digest()
        return int.from_bytes(digest[:8], "big")

    def stream(self, name: str) -> np.random.Generator:
        """The (memoised) generator for ``name``."""
        if name not in self._streams:
            self._streams[name] = np.random.default_rng(self.derive_seed(name))
        return self._streams[name]

    def fork(self, salt: str) -> "RngRegistry":
        """A new registry whose streams are independent of this one."""
        return RngRegistry(self.derive_seed(f"fork:{salt}") % (2**63))

    def reset(self) -> None:
        """Drop all memoised streams (they restart from their seeds)."""
        self._streams.clear()


DEFAULT_SEED = 20250323  # arXiv submission date of the paper


def default_registry() -> RngRegistry:
    """A fresh registry with the library-wide default seed."""
    return RngRegistry(DEFAULT_SEED)
