"""Event primitives for the discrete-event simulation kernel.

The kernel is a small, deterministic, single-threaded DES in the style
of SimPy: a priority queue of timestamped events, and generator-based
processes that suspend on events.  Determinism matters — two runs with
the same seed must produce identical traces — so ties in time are broken
by a monotonically increasing sequence number.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple


class Event:
    """A one-shot occurrence that callbacks and processes can wait on.

    Events move through three states: *pending* → *triggered*
    (scheduled with a value) → *processed* (callbacks ran).  Triggering
    twice is an error; waiting on a processed event fires immediately.
    """

    __slots__ = (
        "env",
        "callbacks",
        "daemon",
        "_value",
        "_ok",
        "_triggered",
        "_processed",
        "_consumed",
        "_voided",
        "_queued",
    )

    def __init__(self, env: "EventQueue") -> None:
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        #: Daemon events (periodic background wake-ups: gossip rounds,
        #: churn transitions) do not keep the simulation alive — a
        #: horizonless ``run()`` stops once only daemon events remain.
        self.daemon = False
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False
        self._consumed = False
        self._voided = False
        self._queued = False

    def void(self) -> None:
        """Retract a scheduled event: it is lazily dropped from the
        queue without processing — crucially, without advancing the
        clock to its scheduled time.  Used for obsolete wake-ups (the
        transfer engine re-arms one on every rate change); a voided
        event never runs its callbacks.
        """
        if self._processed:
            raise RuntimeError("cannot void a processed event")
        self._voided = True
        if self._queued:
            self._queued = False
            if not self.daemon:
                self.env._foreground -= 1

    def mark_consumed(self) -> None:
        """Record that this event's failure was delivered to a waiter.

        A consumed failure is handled (e.g. an ``Interrupt`` caught by
        its target process) and must not re-raise from ``run()``.
        """
        self._consumed = True

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        """False when the event carries a failure (exception value)."""
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise RuntimeError("event value read before trigger")
        return self._value

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Schedule this event to fire successfully after ``delay``."""
        if self._triggered:
            raise RuntimeError("event already triggered")
        self._triggered = True
        self._value = value
        self.env.schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Schedule this event to fire as a failure after ``delay``."""
        if self._triggered:
            raise RuntimeError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        self._triggered = True
        self._ok = False
        self._value = exception
        self.env.schedule(self, delay)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event is processed.

        If the event was already processed the callback runs
        immediately (same tick), which lets late waiters join safely.
        """
        if self.callbacks is None:
            fn(self)
        else:
            self.callbacks.append(fn)

    def _process(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        for fn in callbacks or ():
            fn(self)


class Timeout(Event):
    """An event that fires after a fixed delay (auto-triggered).

    ``daemon=True`` marks a background wake-up: it fires normally
    while the simulation is otherwise alive (and always under a
    ``run(until=...)`` horizon), but pending daemon timeouts alone do
    not keep a horizonless ``run()`` going — eternal periodic
    processes (gossip anti-entropy, churn) yield these so simulations
    that drain the queue still terminate.
    """

    __slots__ = ("delay",)

    def __init__(
        self,
        env: "EventQueue",
        delay: float,
        value: Any = None,
        daemon: bool = False,
    ) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout: {delay}")
        super().__init__(env)
        self.daemon = daemon
        self.delay = delay
        self._triggered = True
        self._value = value
        env.schedule(self, delay)


class EventQueue:
    """The simulation clock plus the time-ordered event heap."""

    def __init__(self) -> None:
        self._now: float = 0.0
        self._heap: List[Tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self._foreground = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def foreground_pending(self) -> int:
        """Scheduled non-daemon events still awaiting processing."""
        return self._foreground

    def schedule(self, event: Event, delay: float = 0.0) -> None:
        """Enqueue ``event`` to process at ``now + delay``."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        event._queued = True
        if not event.daemon:
            self._foreground += 1
        heapq.heappush(self._heap, (self._now + delay, next(self._seq), event))

    def _purge_voided(self) -> None:
        """Drop retracted events from the head of the heap (lazy
        deletion: voided entries deeper in the heap are skipped when
        they surface)."""
        while self._heap and self._heap[0][2]._voided:
            heapq.heappop(self._heap)

    def empty(self) -> bool:
        self._purge_voided()
        return not self._heap

    def peek_time(self) -> float:
        """Time of the next event; ``inf`` when the queue is empty."""
        self._purge_voided()
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> Event:
        """Advance the clock to the next event and process it."""
        self._purge_voided()
        if not self._heap:
            raise RuntimeError("step() on an empty event queue")
        time, _, event = heapq.heappop(self._heap)
        event._queued = False
        if not event.daemon:
            self._foreground -= 1
        self._now = time
        event._process()
        return event
