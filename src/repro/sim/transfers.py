"""Time-resolved transfer engine: shared links, fair share, cancellation.

The paper's pull model resolves every transfer analytically — an
isolated ``Size / BW`` sleep that never contends with anything.  This
module is the alternative: transfers *occupy* links over simulated
time.  Each link is a capacity shared among the transfers crossing it;
rates follow **max-min fairness** (progressive filling), recomputed on
every transfer start, finish, and cancellation.  A transfer traverses
a small path of links (source uplink → channel → destination downlink,
as built by :meth:`~repro.model.network.NetworkModel.transfer_path`)
and its rate is set by the tightest bottleneck along that path.

On top of the rate model the engine enforces **per-device concurrent
upload budgets** (a peer can seed only so many transfers at once —
EdgePier's seeder-contention observation) and supports **mid-transfer
cancellation** (a departing peer fails its in-flight uploads, and the
freed bandwidth is redistributed immediately).

Recompute modes
---------------
The default (``incremental=False``) re-runs progressive filling over
the *entire* active set on every event — simple, and byte-for-byte
pinned by the historical experiments.  ``incremental=True`` re-solves
only the **dirty closure**: the connected component(s) of the
transfer–link bipartite graph touching the links whose membership the
event changed.  Max-min fairness decomposes exactly over connected
components (a transfer's rate depends only on the capacities and
membership of links it can reach through shared transfers), so the
closure fill produces *bit-identical* rates to a full recompute — an
invariant the engine can verify on every event (``self_check=True``)
and the Hypothesis differential tests pin down.  Progress accounting
becomes lazy (per-transfer ``settled_s``) and completions are tracked
in a deadline heap instead of a rescan, so an event on an idle corner
of a 10k-device swarm costs the size of its component, not the swarm.

``sharded=True`` layers region sharding on top of the incremental
mode: every link carries the region that owns it (the ``shard`` field
of :class:`~repro.model.network.LinkSpec`, :data:`~repro.model.network.TRUNK`
for inter-region links), each transfer homes in a shard, and the
single global deadline heap becomes **per-shard heaps** under a
shard-front heap.  An event in region A touches A's heap (plus the
trunk's, when it crosses regions) — never region B's — so the lazy
index scales with the busy region, not the swarm.  Closure search is
unchanged: a transfer spanning shards joins their closures for that
solve and for nothing else, which is the cross-shard merge rule.  The
shard fronts always republish to the true global minimum before the
wake is (re)armed, so the timeout-creation pattern — and therefore
the whole event trace — is bit-identical to the incremental mode.

Which model a simulation uses is selected by :class:`TransferModel`:
``ANALYTIC`` keeps the paper-faithful instant-accounting path bit-for-
bit, ``TIME_RESOLVED`` routes transfers through this engine.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from time import perf_counter_ns
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..model.network import TRUNK
from ..model.units import BYTES_PER_MB, bytes_to_mb, MBIT_PER_MB, transfer_time_s
from .engine import Simulator
from .events import Event

try:  # optional: vectorised bottleneck search for large fills
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None

#: Residual payload (in MB) below which a transfer counts as finished.
#: Far above float noise accumulated by settling (≈1e-13 MB), far below
#: one byte (1e-6 MB), so no real payload is ever silently dropped.
_EPS_MB = 1e-9

#: Fills over at least this many links use the numpy bottleneck search
#: (when numpy is importable).  Below it, array setup costs more than
#: the scalar scan saves.  The dispatch is observable only in wall
#: time: the vector search is bit-identical to the scalar one.
_VECTOR_MIN_LINKS = 48


class TransferModel(enum.Enum):
    """How the simulation turns bytes into elapsed time."""

    #: The paper's model: ``Size / BW`` computed analytically, slept in
    #: one piece, no contention.  Seed experiments reproduce bit-for-bit.
    ANALYTIC = "analytic"
    #: Transfers occupy shared links over time via :class:`TransferEngine`.
    TIME_RESOLVED = "time-resolved"


class UploadBudgetExceeded(RuntimeError):
    """The source device is already at its concurrent-upload budget."""


class InflightCollision(RuntimeError):
    """A transfer for the same ``(dst, digest)`` is already in flight.

    Starting a second one would silently evict the first from the
    inbound index and break the join-in-flight dedup contract that
    :meth:`TransferEngine.inflight_to` documents — callers must join
    the existing transfer (or start the duplicate without a digest,
    as the chunked endgame does for its speculative copies).
    """


class TransferCancelled(Exception):
    """Delivered to waiters of a transfer that was cancelled mid-flight."""

    def __init__(self, transfer: "Transfer", reason: str = "") -> None:
        super().__init__(
            f"transfer {transfer.src}->{transfer.dst} cancelled"
            + (f": {reason}" if reason else "")
        )
        self.transfer = transfer
        self.reason = reason


class Link:
    """One shared channel: a capacity and the transfers crossing it."""

    __slots__ = (
        "name", "capacity_mbps", "shard", "transfers", "peak_utilisation_mbps"
    )

    def __init__(
        self, name: str, capacity_mbps: float, shard: str = TRUNK
    ) -> None:
        if capacity_mbps <= 0:
            raise ValueError(f"link {name!r} capacity must be > 0")
        self.name = name
        self.capacity_mbps = capacity_mbps
        #: Region that owns this link for per-shard scheduling
        #: (:data:`~repro.model.network.TRUNK` when none does).
        self.shard = shard
        #: Active transfers keyed by transfer id (insertion ordered —
        #: determinism depends on it).
        self.transfers: Dict[int, "Transfer"] = {}
        #: Highest simultaneous allocated rate ever observed (tests use
        #: this to check fair shares never oversubscribe the link).
        self.peak_utilisation_mbps = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Link({self.name!r}, {self.capacity_mbps} Mbit/s, "
            f"{len(self.transfers)} active)"
        )


class Transfer:
    """One payload moving through a path of shared links."""

    __slots__ = (
        "id",
        "src",
        "dst",
        "digest",
        "size_bytes",
        "src_is_registry",
        "links",
        "latency_s",
        "done",
        "requested_s",
        "completed_s",
        "cancelled",
        "remaining_mb",
        "rate_mbps",
        "active",
        "settled_s",
        "shard",
    )

    def __init__(
        self,
        transfer_id: int,
        src: str,
        dst: str,
        size_bytes: int,
        links: Tuple[Link, ...],
        latency_s: float,
        done: Event,
        requested_s: float,
        src_is_registry: bool,
        digest: str,
    ) -> None:
        self.id = transfer_id
        self.src = src
        self.dst = dst
        self.digest = digest
        self.size_bytes = size_bytes
        self.src_is_registry = src_is_registry
        self.links = links
        self.latency_s = latency_s
        self.done = done
        self.requested_s = requested_s
        self.completed_s: Optional[float] = None
        self.cancelled = False
        self.remaining_mb = bytes_to_mb(size_bytes)
        self.rate_mbps = 0.0
        #: True while the transfer occupies its links (past latency,
        #: not yet finished/cancelled).
        self.active = False
        #: Simulated time up to which ``remaining_mb`` is accounted
        #: (incremental mode settles lazily, per dirty closure).
        self.settled_s = requested_s
        #: Home shard for the per-shard deadline index: the last
        #: region-owned link of the path (the destination side), the
        #: trunk when the whole path is trunk.  Purely an index
        #: placement — any deterministic choice yields the same rates.
        shard = TRUNK
        for link in reversed(links):
            if link.shard != TRUNK:
                shard = link.shard
                break
        self.shard = shard

    @property
    def lower_bound_s(self) -> float:
        """Uncontended completion time: latency + size over the
        narrowest link of the path.  No schedule can beat it."""
        if not self.links:
            return self.latency_s
        bottleneck = min(link.capacity_mbps for link in self.links)
        return self.latency_s + transfer_time_s(
            bytes_to_mb(self.size_bytes), bottleneck
        )

    @property
    def seconds(self) -> Optional[float]:
        """Wall-clock (simulated) duration; None while in flight."""
        if self.completed_s is None:
            return None
        return self.completed_s - self.requested_s

    @property
    def moved_bytes(self) -> int:
        """Payload bytes already delivered (settled progress).

        Exact for finished/cancelled transfers — the engine settles
        progress before failing a cancelled transfer's event — so this
        is what waste accounting reads when a mid-flight fallback
        abandons a transfer's delivered bytes.
        """
        done_mb = bytes_to_mb(self.size_bytes) - self.remaining_mb
        moved = int(round(done_mb * BYTES_PER_MB))
        return max(0, min(self.size_bytes, moved))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "cancelled" if self.cancelled
            else "done" if self.completed_s is not None
            else "active" if self.active
            else "latency"
        )
        return (
            f"Transfer#{self.id}({self.src}->{self.dst}, "
            f"{self.size_bytes} B, {state})"
        )


class _Shard:
    """Per-region slice of the lazy deadline index (sharded mode).

    ``heap`` holds ``(deadline, transfer id, token)`` entries for
    transfers homed in this shard; ``front`` is the earliest
    still-valid deadline as of the last publish, ``pub`` the publish
    stamp that validates this shard's entry in the engine's
    shard-front heap (older stamps are lazily discarded there).
    """

    __slots__ = ("name", "heap", "pub", "front")

    def __init__(self, name: str) -> None:
        self.name = name
        self.heap: List[Tuple[float, int, int]] = []
        self.pub = 0
        self.front = float("inf")


class TransferEngine:
    """Shared-bandwidth transfer scheduler on the DES clock.

    One engine serves one simulation: it owns the :class:`Link` objects
    (materialised lazily from the network's
    :meth:`~repro.model.network.NetworkModel.transfer_path` specs),
    tracks every in-flight :class:`Transfer`, and keeps all rates
    max-min fair.  Rate recomputation runs on every start, finish, and
    cancellation — there is no per-tick work, so idle links are free.

    Recompute cost
    --------------
    In the default full mode every event costs ``O(active transfers +
    involved links)``.  With ``incremental=True`` an event costs only
    its **dirty closure** — the connected component(s) of the
    transfer–link graph reachable from the links whose membership
    changed.  Because max-min fairness is exactly decomposable over
    components, the closure fill is bit-identical to a full recompute
    (``self_check=True`` re-derives the full solution after every event
    and asserts equality — a test hook, quadratic, never for
    production runs).  ``transfers_visited`` counts the transfers each
    mode actually re-rates, so scale benchmarks can compare the work
    directly.

    ``sharded=True`` (implies incremental) splits the deadline index
    by the region shard each link carries: per-shard heaps under a
    shard-front heap, one global wake armed at the minimum front.
    Rates, traces and all counters stay bit-identical to the
    incremental mode (the module docstring explains why); what changes
    is that deadline-index maintenance — pushes, drains, stale-entry
    pruning — touches only the shards an event involves instead of one
    world-sized heap.

    Upload budgets
    --------------
    ``default_upload_budget`` caps concurrent uploads *per device
    source* (registries are exempt: their fan-out is the CDN's
    problem, modelled by their uplink capacity instead).  A saturated
    source makes :meth:`start` raise :class:`UploadBudgetExceeded`;
    callers re-resolve to another source.
    """

    def __init__(
        self,
        sim: Simulator,
        network,
        default_upload_budget: Optional[int] = None,
        incremental: bool = False,
        self_check: bool = False,
        sharded: bool = False,
    ) -> None:
        if default_upload_budget is not None and default_upload_budget < 0:
            raise ValueError(
                f"default_upload_budget must be >= 0, got {default_upload_budget}"
            )
        self.sim = sim
        self.network = network
        self.default_upload_budget = default_upload_budget
        self.incremental = incremental or sharded
        self.sharded = sharded
        self.self_check = self_check
        #: Minimum involved-link count for the numpy bottleneck search;
        #: benchmarks/tests lower it to force (or raise it to disable)
        #: the vector path.
        self.vector_min_links = _VECTOR_MIN_LINKS
        self._links: Dict[str, Link] = {}
        self._active: Dict[int, Transfer] = {}
        self._uploads: Dict[str, Dict[int, Transfer]] = {}
        self._inbound: Dict[Tuple[str, str], Transfer] = {}
        self._budgets: Dict[str, Optional[int]] = {}
        self._ids = itertools.count()
        self._clock_s = sim.now
        self._generation = 0
        self._wake: Optional[Event] = None
        # incremental mode: predicted completions as a lazy min-heap of
        # (deadline, transfer id, token); _tokens holds each transfer's
        # latest token, so stale entries are skipped when they surface.
        self._deadline_heap: List[Tuple[float, int, int]] = []
        self._tokens: Dict[int, int] = {}
        self._token_seq = itertools.count()
        self._wake_deadline = float("inf")
        # sharded mode: the deadline index above splits into per-shard
        # heaps; _front_heap holds (front deadline, shard name, pub
        # stamp) and _touched names the shards whose front may have
        # moved since the last publish (re-published before every arm,
        # so the armed wake always tracks the true global minimum).
        self._shards: Dict[str, _Shard] = {}
        self._front_heap: List[Tuple[float, str, int]] = []
        self._touched: set = set()
        # diagnostics
        self.started = 0
        self.completed = 0
        self.cancellations = 0
        self.recomputes = 0
        self.bytes_completed = 0
        #: Transfers assigned a rate, summed over all recomputes — the
        #: work metric the scale benchmarks compare across modes (full
        #: mode re-rates every active transfer per event; incremental
        #: mode only its dirty closure).
        self.transfers_visited = 0
        # telemetry (duck-typed, None = off; see repro.telemetry).
        #: Optional trace sink receiving transfer.start/finish/cancel
        #: and engine.reallocate records.
        self.trace = None
        #: Optional self-profiler receiving per-recompute wall-clock ns,
        #: closure sizes, and per-shard heap push/pop/invalidation
        #: counts ("@global" = the incremental mode's single deadline
        #: heap, "@front" = the sharded mode's shard-front heap).
        self.profile = None
        #: Reallocation-solve sequence (the closure id trace records
        #: carry — one per fill, shared by the rates it assigned).
        self._closure_seq = itertools.count()

    # ------------------------------------------------------------------
    # upload budgets
    # ------------------------------------------------------------------
    def set_upload_budget(self, device: str, budget: Optional[int]) -> None:
        """Override the concurrent-upload budget for one device."""
        if budget is not None and budget < 0:
            raise ValueError(f"upload budget must be >= 0, got {budget}")
        self._budgets[device] = budget

    def upload_budget(self, device: str) -> Optional[int]:
        return self._budgets.get(device, self.default_upload_budget)

    def uploads_in_flight(self, device: str) -> int:
        return len(self._uploads.get(device, ()))

    def can_upload(self, device: str) -> bool:
        """Whether ``device`` may start one more upload right now."""
        budget = self.upload_budget(device)
        return budget is None or self.uploads_in_flight(device) < budget

    # ------------------------------------------------------------------
    # starting / finishing / cancelling
    # ------------------------------------------------------------------
    def start(
        self,
        src: str,
        dst: str,
        size_bytes: int,
        src_is_registry: bool = False,
        digest: str = "",
    ) -> Transfer:
        """Begin moving ``size_bytes`` from ``src`` to ``dst``.

        Returns a :class:`Transfer` whose ``done`` event fires (with
        the transfer as value) at completion, or fails with
        :class:`TransferCancelled` if cancelled.  Raises
        :class:`UploadBudgetExceeded` if a *device* source is already
        at its budget, and :class:`InflightCollision` if a transfer
        for the same ``(dst, digest)`` is already in flight (join it
        via :meth:`inflight_to` instead) — no slot is consumed in
        either case.
        """
        if size_bytes < 0:
            raise ValueError(f"negative transfer size: {size_bytes}")
        if not src_is_registry and not self.can_upload(src):
            raise UploadBudgetExceeded(
                f"{src!r} is at its upload budget "
                f"({self.uploads_in_flight(src)} in flight)"
            )
        if digest:
            existing = self._inbound.get((dst, digest))
            if existing is not None:
                raise InflightCollision(
                    f"transfer of {digest} to {dst!r} already in flight "
                    f"(#{existing.id} from {existing.src!r}); join it via "
                    f"inflight_to()"
                )
        specs, latency_s = self.network.transfer_path(
            src, dst, src_is_registry=src_is_registry
        )
        links = tuple(
            self._link(spec.name, spec.capacity_mbps, spec.shard)
            for spec in specs
        )
        transfer = Transfer(
            transfer_id=next(self._ids),
            src=src,
            dst=dst,
            size_bytes=size_bytes,
            links=links,
            latency_s=latency_s,
            done=self.sim.event(),
            requested_s=self.sim.now,
            src_is_registry=src_is_registry,
            digest=digest,
        )
        self.started += 1
        if self.trace is not None:
            self.trace.record(
                self.sim.now, "transfer.start", dst,
                id=transfer.id, src=src, size_bytes=size_bytes,
                digest=digest, registry=src_is_registry,
            )
        if not src_is_registry:
            self._uploads.setdefault(src, {})[transfer.id] = transfer
        if digest:
            self._inbound[(dst, digest)] = transfer
        if latency_s > 0:
            handshake = self.sim.timeout(latency_s)
            handshake.add_callback(lambda _evt, t=transfer: self._activate(t))
        else:
            self._activate(transfer)
        return transfer

    def cancel(self, transfer: Transfer, reason: str = "") -> bool:
        """Abort an in-flight transfer; its bandwidth frees immediately.

        Returns False (no-op) if the transfer already completed or was
        already cancelled; otherwise fails the transfer's ``done``
        event with :class:`TransferCancelled`.
        """
        return self._cancel_batch((transfer,), reason) > 0

    def cancel_many(
        self, transfers: Iterable[Transfer], reason: str = ""
    ) -> int:
        """Cancel a batch of transfers with **one** settle + recompute.

        Already-finished or already-cancelled entries are skipped, like
        :meth:`cancel`.  The batch detaches every victim before rates
        are re-solved once, so cancelling k transfers costs one
        recompute instead of k — and survivors never observe the
        intermediate memberships (which a per-victim loop would expose
        as phantom rate spikes in zero elapsed time).  Victims are
        processed in id order for determinism.  Returns the number of
        transfers actually cancelled.
        """
        return self._cancel_batch(
            sorted(transfers, key=lambda t: t.id), reason
        )

    def cancel_uploads_from(self, device: str, reason: str = "") -> int:
        """Cancel every in-flight upload seeded by ``device``.

        The device-departure hook: a peer leaving the swarm takes its
        uploads with it.  The whole batch settles and recomputes once
        (a departing seeder with k uploads used to trigger k
        recomputes).  Returns the number of transfers cancelled.
        """
        victims = sorted(
            self._uploads.get(device, {}).values(), key=lambda t: t.id
        )
        return self._cancel_batch(victims, reason or f"{device} departed")

    def _cancel_batch(
        self, transfers: Sequence[Transfer], reason: str
    ) -> int:
        victims = [
            t for t in transfers
            if not t.cancelled and t.completed_s is None
        ]
        if not victims:
            return 0
        any_active = any(t.active for t in victims)
        if any_active and not self.incremental:
            self._settle()
        seeds: List[Link] = []
        for transfer in victims:
            transfer.cancelled = True
            self.cancellations += 1
            self._release_slot(transfer)
            if transfer.active:
                if self.incremental:
                    self._settle_one(transfer)
                seeds.extend(transfer.links)
                self._detach(transfer)
        if any_active:
            if self.incremental:
                self._recompute_incremental(seeds)
            else:
                self._recompute()
        # Event failure is deferred (callbacks run when the queue
        # processes the event), so failing after the single recompute
        # preserves the per-victim ordering waiters observe.
        for transfer in victims:
            if self.trace is not None:
                self.trace.record(
                    self.sim.now, "transfer.cancel", transfer.dst,
                    id=transfer.id, reason=reason,
                    moved_bytes=transfer.moved_bytes,
                )
            transfer.done.fail(TransferCancelled(transfer, reason))
        return len(victims)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def active_transfers(self) -> List[Transfer]:
        return list(self._active.values())

    def inflight_to(self, dst: str, digest: str) -> Optional[Transfer]:
        """The transfer currently landing ``digest`` on ``dst``, if any.

        Concurrent pulls on one device use this to *join* a download
        another pull already started (one reservation, one payload on
        the wire) instead of fetching the layer twice.
        """
        return self._inbound.get((dst, digest))

    def remaining_mb(self, transfer: Transfer) -> float:
        """The transfer's unsent payload as of *now*.

        In full mode ``transfer.remaining_mb`` is already as fresh as
        the last engine event; in incremental mode settling is lazy per
        dirty closure, so mid-flight readers (the chunked endgame's
        straggler detection) must project progress forward to the
        current clock.  Non-mutating: querying never perturbs the
        engine's own accounting.
        """
        if not (self.incremental and transfer.active):
            return transfer.remaining_mb
        dt = self.sim.now - transfer.settled_s
        if dt <= 0 or transfer.rate_mbps <= 0:
            return transfer.remaining_mb
        return max(
            0.0,
            transfer.remaining_mb - transfer.rate_mbps / MBIT_PER_MB * dt,
        )

    def link(self, name: str) -> Optional[Link]:
        return self._links.get(name)

    def links(self) -> List[Link]:
        return list(self._links.values())

    def estimated_rate_mbps(
        self, src: str, dst: str, src_is_registry: bool = False
    ) -> float:
        """Fair-share rate a transfer started *now* would roughly get.

        Walks the ``src → dst`` path and takes, per link, the equal
        split among the link's current occupants plus the newcomer —
        the first-order max-min estimate (the true allocation can be
        higher when other occupants are bottlenecked elsewhere).  Links
        with no live state count at full capacity.  Loopback is
        ``inf``.  This is the utilisation signal contention-aware
        schedulers consume instead of the analytic nominal bandwidth.
        """
        specs, _latency_s = self.network.transfer_path(
            src, dst, src_is_registry=src_is_registry
        )
        return self._share_over(specs)

    def _share_over(self, specs) -> float:
        rate = float("inf")
        for spec in specs:
            link = self._links.get(spec.name)
            occupants = len(link.transfers) if link is not None else 0
            rate = min(rate, spec.capacity_mbps / (occupants + 1))
        return rate

    def estimated_transfer_s(
        self, src: str, dst: str, size_mb: float, src_is_registry: bool = False
    ) -> float:
        """Contention-aware counterpart of ``Channel.transfer_time_s``."""
        specs, latency_s = self.network.transfer_path(
            src, dst, src_is_registry=src_is_registry
        )
        if not specs or size_mb <= 0:
            return 0.0
        return latency_s + transfer_time_s(size_mb, self._share_over(specs))

    def peak_oversubscription(self) -> float:
        """Worst observed ``allocated / capacity`` over all links.

        Utilisation is the *sum of allocated rates* over a link's
        transfers — measured independently of the filling loop's own
        capacity bookkeeping, so a real over-allocation bug shows up
        here as a ratio above 1 instead of being clamped away.
        Max-min fairness guarantees the ratio never exceeds 1 (modulo
        float noise); the Hypothesis invariant tests pin it down.
        """
        worst = 0.0
        for link in self._links.values():
            worst = max(worst, link.peak_utilisation_mbps / link.capacity_mbps)
        return worst

    def reference_rates(self) -> Dict[int, float]:
        """Max-min rates from a scalar full fill over every active
        transfer, computed without touching engine state — the oracle
        the incremental closure fill (and the vector search) must match
        bit-for-bit."""
        record: Dict[int, float] = {}
        if self._active:
            self._fill(self._active, record=record)
        return record

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _link(
        self, name: str, capacity_mbps: float, shard: str = TRUNK
    ) -> Link:
        link = self._links.get(name)
        if link is None:
            link = Link(name, capacity_mbps, shard)
            self._links[name] = link
        elif link.capacity_mbps != capacity_mbps:
            raise ValueError(
                f"link {name!r} capacity changed mid-simulation "
                f"({link.capacity_mbps} -> {capacity_mbps} Mbit/s)"
            )
        elif link.shard != shard:
            raise ValueError(
                f"link {name!r} shard changed mid-simulation "
                f"({link.shard!r} -> {shard!r})"
            )
        return link

    def _activate(self, transfer: Transfer) -> None:
        """Latency elapsed: the transfer joins its links."""
        if transfer.cancelled:
            return
        if transfer.remaining_mb <= _EPS_MB or not transfer.links:
            # Zero payload (or loopback): done as soon as the
            # handshake completes — it never occupies a link.
            self._finish(transfer)
            return
        if not self.incremental:
            self._settle()
        transfer.active = True
        transfer.settled_s = self.sim.now
        self._active[transfer.id] = transfer
        for link in transfer.links:
            link.transfers[transfer.id] = transfer
        if self.incremental:
            self._recompute_incremental(transfer.links)
        else:
            self._recompute()

    def _detach(self, transfer: Transfer) -> None:
        transfer.active = False
        self._active.pop(transfer.id, None)
        had_token = self._tokens.pop(transfer.id, None) is not None
        if had_token and self.sharded:
            # The popped token invalidates a heap entry; the home
            # shard's published front may now be stale, so it must
            # republish before the next arm (otherwise the wake could
            # fire earlier than the incremental mode's, skewing the
            # event trace the modes must share).
            self._touched.add(transfer.shard)
        for link in transfer.links:
            link.transfers.pop(transfer.id, None)

    def _release_slot(self, transfer: Transfer) -> None:
        if not transfer.src_is_registry:
            slots = self._uploads.get(transfer.src)
            if slots is not None:
                slots.pop(transfer.id, None)
                if not slots:
                    del self._uploads[transfer.src]
        if transfer.digest:
            key = (transfer.dst, transfer.digest)
            if self._inbound.get(key) is transfer:
                del self._inbound[key]

    def _finish(self, transfer: Transfer) -> None:
        self._detach(transfer)
        self._release_slot(transfer)
        transfer.completed_s = self.sim.now
        transfer.remaining_mb = 0.0
        transfer.rate_mbps = 0.0
        self.completed += 1
        self.bytes_completed += transfer.size_bytes
        if self.trace is not None:
            self.trace.record(
                self.sim.now, "transfer.finish", transfer.dst,
                id=transfer.id,
                duration_s=transfer.completed_s - transfer.requested_s,
            )
        transfer.done.succeed(transfer)

    def _settle(self) -> None:
        """Account progress made at the current rates since the last
        rate change, bringing every ``remaining_mb`` up to date (full
        mode; incremental mode settles lazily via :meth:`_settle_one`)."""
        dt = self.sim.now - self._clock_s
        self._clock_s = self.sim.now
        if dt <= 0:
            return
        for transfer in self._active.values():
            if transfer.rate_mbps > 0:
                transfer.remaining_mb = max(
                    0.0,
                    transfer.remaining_mb - transfer.rate_mbps / MBIT_PER_MB * dt,
                )

    def _settle_one(self, transfer: Transfer) -> None:
        """Bring one transfer's ``remaining_mb`` up to the current
        clock at its (unchanged) rate."""
        dt = self.sim.now - transfer.settled_s
        transfer.settled_s = self.sim.now
        if dt <= 0 or transfer.rate_mbps <= 0:
            return
        transfer.remaining_mb = max(
            0.0,
            transfer.remaining_mb - transfer.rate_mbps / MBIT_PER_MB * dt,
        )

    # ------------------------------------------------------------------
    # progressive filling (shared by both recompute modes)
    # ------------------------------------------------------------------
    def _fill(
        self,
        transfers: Dict[int, Transfer],
        record: Optional[Dict[int, float]] = None,
    ) -> None:
        """Progressive filling over ``transfers``.

        ``transfers`` must be a union of whole connected components of
        the transfer–link graph (the full active set always is; the
        incremental dirty closure is by construction).  Assigns each
        transfer its max-min fair rate and records per-link peak
        utilisation as the **sum of allocated rates** — independent of
        the loop's own capacity bookkeeping, so an over-allocation bug
        is observable.  With ``record`` the rates go into that mapping
        instead and no engine state is touched (the scalar reference
        oracle).
        """
        capacity_left: Dict[str, float] = {}
        unfrozen_count: Dict[str, int] = {}
        involved: List[Link] = []
        for transfer in transfers.values():
            for link in transfer.links:
                if link.name not in capacity_left:
                    capacity_left[link.name] = link.capacity_mbps
                    unfrozen_count[link.name] = 0
                    involved.append(link)
                unfrozen_count[link.name] += 1
        if (
            record is None
            and _np is not None
            and len(involved) >= self.vector_min_links
        ):
            self._fill_vector(transfers, involved, capacity_left, unfrozen_count)
        else:
            self._fill_scalar(
                transfers, involved, capacity_left, unfrozen_count, record
            )
        if record is None:
            self.transfers_visited += len(transfers)
            self._record_peaks(involved)
            if self.trace is not None:
                # Integer transfer ids as keys — json.dumps stringifies
                # them at export; skipping str() here keeps the hot
                # path inside the tracing overhead budget.
                self.trace.record(
                    self.sim.now, "engine.reallocate", "",
                    closure=next(self._closure_seq), n=len(transfers),
                    rates={
                        tid: t.rate_mbps for tid, t in transfers.items()
                    },
                )

    def _fill_scalar(
        self,
        transfers: Dict[int, Transfer],
        involved: List[Link],
        capacity_left: Dict[str, float],
        unfrozen_count: Dict[str, int],
        record: Optional[Dict[int, float]],
    ) -> None:
        frozen: Dict[int, bool] = {}
        remaining = len(transfers)
        while remaining > 0:
            # Bottleneck link: the one whose equal split is smallest.
            best_link: Optional[Link] = None
            best_share = 0.0
            for link in involved:
                count = unfrozen_count[link.name]
                if count == 0:
                    continue
                share = capacity_left[link.name] / count
                if best_link is None or share < best_share or (
                    share == best_share and link.name < best_link.name
                ):
                    best_link, best_share = link, share
            assert best_link is not None  # remaining > 0 implies a link
            for tid in sorted(best_link.transfers):
                if tid in frozen:
                    continue
                transfer = best_link.transfers[tid]
                if record is None:
                    transfer.rate_mbps = best_share
                else:
                    record[tid] = best_share
                frozen[tid] = True
                remaining -= 1
                for link in transfer.links:
                    capacity_left[link.name] = max(
                        0.0, capacity_left[link.name] - best_share
                    )
                    unfrozen_count[link.name] -= 1

    def _fill_vector(
        self,
        transfers: Dict[int, Transfer],
        involved: List[Link],
        capacity_left: Dict[str, float],
        unfrozen_count: Dict[str, int],
    ) -> None:
        """The scalar fill with its bottleneck *search* vectorised.

        Only the per-round scan for the minimum equal split moves into
        numpy; freezing and capacity subtraction stay scalar in the
        identical order, and IEEE-754 division/compare are elementwise
        identical between numpy float64 and Python floats — so the
        rates are bit-identical to :meth:`_fill_scalar` (pinned by the
        self-check tests, which force the oracle through the scalar
        path).
        """
        names = [link.name for link in involved]
        index = {name: i for i, name in enumerate(names)}
        caps = _np.array([capacity_left[name] for name in names], dtype=_np.float64)
        counts = _np.array(
            [unfrozen_count[name] for name in names], dtype=_np.int64
        )
        # Tie-break rank: position in name-sorted order, so argmin over
        # (share, rank) matches the scalar "smallest share, then
        # lexicographically smallest name" rule.
        rank = _np.empty(len(names), dtype=_np.int64)
        for pos, i in enumerate(
            sorted(range(len(names)), key=lambda j: names[j])
        ):
            rank[i] = pos
        frozen: Dict[int, bool] = {}
        remaining = len(transfers)
        while remaining > 0:
            shares = _np.where(
                counts > 0, caps / _np.maximum(counts, 1), _np.inf
            )
            best = shares.min()
            candidates = _np.flatnonzero(shares == best)
            i = int(candidates[_np.argmin(rank[candidates])])
            best_link = involved[i]
            best_share = float(best)
            for tid in sorted(best_link.transfers):
                if tid in frozen:
                    continue
                transfer = best_link.transfers[tid]
                transfer.rate_mbps = best_share
                frozen[tid] = True
                remaining -= 1
                for link in transfer.links:
                    j = index[link.name]
                    caps[j] = max(0.0, float(caps[j]) - best_share)
                    counts[j] -= 1

    def _record_peaks(self, involved: Iterable[Link]) -> None:
        """Update peak utilisation from the rates actually allocated."""
        for link in involved:
            utilisation = 0.0
            for transfer in link.transfers.values():
                utilisation += transfer.rate_mbps
            if utilisation > link.peak_utilisation_mbps:
                link.peak_utilisation_mbps = utilisation

    # ------------------------------------------------------------------
    # full recompute (the default mode)
    # ------------------------------------------------------------------
    def _recompute(self) -> None:
        """Progressive filling over the whole active set, then arm a
        wake-up at the earliest predicted completion."""
        self.recomputes += 1
        self._generation += 1
        # Retract the previously armed wake-up: a stale one must not
        # drag the clock out to a prediction that no longer holds
        # (e.g. the sole transfer on a slow link was just cancelled).
        if self._wake is not None and not self._wake.processed:
            self._wake.void()
        self._wake = None
        if not self._active:
            return
        if self.profile is not None:
            # Observation only: wall time feeds the profiler, never the
            # simulation clock or any outcome.
            t0 = perf_counter_ns()  # repro-lint: disable=wall-clock-in-sim
            self._fill(self._active)
            self.profile.note_recompute(
                perf_counter_ns() - t0,  # repro-lint: disable=wall-clock-in-sim
                len(self._active),
            )
        else:
            self._fill(self._active)
        if self.self_check:
            self._assert_reference_rates()
        # Earliest completion under the new rates.
        next_dt = float("inf")
        for transfer in self._active.values():
            if transfer.rate_mbps > 0:
                next_dt = min(
                    next_dt,
                    transfer.remaining_mb * MBIT_PER_MB / transfer.rate_mbps,
                )
        if next_dt == float("inf"):  # pragma: no cover - defensive
            return
        generation = self._generation
        wake = self.sim.timeout(next_dt)
        wake.add_callback(lambda _evt, g=generation: self._on_wake(g))
        self._wake = wake

    def _on_wake(self, generation: int) -> None:
        if generation != self._generation:
            return  # stale wake-up: rates changed since it was armed
        self._settle()
        finished = [
            t for t in self._active.values() if t.remaining_mb <= _EPS_MB
        ]
        for transfer in sorted(finished, key=lambda t: t.id):
            self._finish(transfer)
        self._recompute()

    # ------------------------------------------------------------------
    # incremental recompute (dirty-closure mode)
    # ------------------------------------------------------------------
    def _recompute_incremental(self, seeds: Iterable[Link]) -> None:
        """Re-solve only the connected component(s) touching ``seeds``.

        ``seeds`` are the links whose membership the triggering event
        changed.  The closure walk collects every transfer reachable
        from them through shared links (settling each at its old rate
        first — rates change only after progress is accounted), then
        refills that closure.  Transfers outside the closure share no
        link with it, directly or transitively, so their max-min rates
        are provably unchanged — skipping them is what breaks the
        every-event-scans-everything cost wall.
        """
        self.recomputes += 1
        # Observation only: feeds the profiler, never an outcome.
        t0 = perf_counter_ns() if self.profile is not None else 0  # repro-lint: disable=wall-clock-in-sim
        seen: set = set()
        stack: List[Link] = []
        for link in seeds:
            if link.name not in seen:
                seen.add(link.name)
                stack.append(link)
        closure: Dict[int, Transfer] = {}
        while stack:
            link = stack.pop()
            for tid, transfer in link.transfers.items():
                if tid in closure:
                    continue
                closure[tid] = transfer
                self._settle_one(transfer)
                for other in transfer.links:
                    if other.name not in seen:
                        seen.add(other.name)
                        stack.append(other)
        if len(closure) == 1:
            # Degenerate (and, off the hot spots, most common) closure:
            # a transfer alone on all its links.  Its max-min rate is
            # the path bottleneck; skip the filling-loop bookkeeping.
            (transfer,) = closure.values()
            rate = min(link.capacity_mbps for link in transfer.links)
            transfer.rate_mbps = rate
            self.transfers_visited += 1
            for link in transfer.links:
                if rate > link.peak_utilisation_mbps:
                    link.peak_utilisation_mbps = rate
            self._push_deadline(transfer)
            if self.trace is not None:
                self.trace.record(
                    self.sim.now, "engine.reallocate", "",
                    closure=next(self._closure_seq), n=1,
                    rates={transfer.id: rate},
                )
        elif closure:
            self._fill(closure)
            for transfer in closure.values():
                self._push_deadline(transfer)
        if self.profile is not None:
            # repro-lint: disable=wall-clock-in-sim
            self.profile.note_recompute(perf_counter_ns() - t0, len(closure))
        if self.self_check:
            self._assert_reference_rates()
        if self.sharded:
            self._arm_wake_sharded()
        else:
            self._arm_wake_incremental()

    def _push_deadline(self, transfer: Transfer) -> None:
        """(Re)index one transfer's predicted completion time."""
        if transfer.rate_mbps > 0:
            deadline = (
                transfer.settled_s
                + transfer.remaining_mb * MBIT_PER_MB / transfer.rate_mbps
            )
            token = next(self._token_seq)
            self._tokens[transfer.id] = token
            if self.sharded:
                shard = self._shard(transfer.shard)
                heapq.heappush(shard.heap, (deadline, transfer.id, token))
                self._touched.add(shard.name)
                if self.profile is not None:
                    self.profile.heap_push(shard.name)
            else:
                heapq.heappush(
                    self._deadline_heap, (deadline, transfer.id, token)
                )
                if self.profile is not None:
                    self.profile.heap_push("@global")
        else:  # pragma: no cover - a filled transfer always has a rate
            self._tokens.pop(transfer.id, None)

    def _arm_wake_incremental(self) -> None:
        """Point the engine's single wake-up at the heap's earliest
        still-valid deadline (stale tops are lazily dropped)."""
        heap = self._deadline_heap
        while heap and self._tokens.get(heap[0][1]) != heap[0][2]:
            heapq.heappop(heap)
            if self.profile is not None:
                self.profile.heap_invalidate("@global")
        live = self._wake is not None and not self._wake.processed
        if not heap:
            if live:
                self._generation += 1
                self._wake.void()
                self._wake = None
            return
        deadline = heap[0][0]
        if live:
            if deadline == self._wake_deadline:
                return  # armed wake already fires at the right time
            self._wake.void()
        self._generation += 1
        generation = self._generation
        wake = self.sim.timeout(max(0.0, deadline - self.sim.now))
        wake.add_callback(
            lambda _evt, g=generation: self._on_wake_incremental(g)
        )
        self._wake = wake
        self._wake_deadline = deadline

    def _on_wake_incremental(self, generation: int) -> None:
        if generation != self._generation:
            return  # stale wake-up: the heap front changed since
        now = self.sim.now
        heap = self._deadline_heap
        prof = self.profile
        finished: List[Transfer] = []
        while heap:
            deadline, tid, token = heap[0]
            if self._tokens.get(tid) != token:
                heapq.heappop(heap)
                if prof is not None:
                    prof.heap_invalidate("@global")
                continue
            if deadline > now:
                break
            heapq.heappop(heap)
            if prof is not None:
                prof.heap_pop("@global")
            transfer = self._active[tid]
            self._settle_one(transfer)
            if transfer.remaining_mb <= _EPS_MB:
                finished.append(transfer)
                continue
            # Residual payload above the finish threshold: re-predict.
            # If the new deadline cannot advance the clock (a sub-ulp
            # residue of the timeout's float rounding), finishing now
            # is the only way to guarantee progress.
            deadline = (
                transfer.settled_s
                + transfer.remaining_mb * MBIT_PER_MB / transfer.rate_mbps
            )
            if deadline <= now:
                finished.append(transfer)
            else:
                token = next(self._token_seq)
                self._tokens[tid] = token
                heapq.heappush(heap, (deadline, tid, token))
                if prof is not None:
                    prof.heap_push("@global")
        if finished:
            seeds: List[Link] = []
            for transfer in sorted(finished, key=lambda t: t.id):
                seeds.extend(transfer.links)
                self._finish(transfer)
            self._recompute_incremental(seeds)
        else:
            self._arm_wake_incremental()

    # ------------------------------------------------------------------
    # sharded deadline index (region-sharded mode)
    # ------------------------------------------------------------------
    def _shard(self, name: str) -> _Shard:
        shard = self._shards.get(name)
        if shard is None:
            shard = _Shard(name)
            self._shards[name] = shard
        return shard

    def shard_fronts(self) -> Dict[str, float]:
        """Earliest pending deadline per shard (``inf`` when idle) —
        introspection for tests and diagnostics."""
        return {name: shard.front for name, shard in self._shards.items()}

    def _arm_wake_sharded(self) -> None:
        """Republish touched shard fronts, then point the single
        wake-up at the shard-front heap's earliest valid entry.

        Publishing prunes each touched shard's stale heap tops and,
        when the front moved, stamps a fresh entry into the front
        heap (the old stamp invalidates lazily).  Untouched shards
        cannot have a stale top — every token change marks its shard —
        so the front-heap minimum equals the minimum over *all* valid
        deadlines, exactly what the incremental mode arms at.
        """
        prof = self.profile
        if self._touched:
            for name in sorted(self._touched):
                shard = self._shards[name]
                heap = shard.heap
                while heap and self._tokens.get(heap[0][1]) != heap[0][2]:
                    heapq.heappop(heap)
                    if prof is not None:
                        prof.heap_invalidate(name)
                front = heap[0][0] if heap else float("inf")
                if front != shard.front:
                    shard.front = front
                    shard.pub += 1
                    if front != float("inf"):
                        heapq.heappush(
                            self._front_heap, (front, name, shard.pub)
                        )
                        if prof is not None:
                            prof.heap_push("@front")
            self._touched.clear()
        fronts = self._front_heap
        while fronts and self._shards[fronts[0][1]].pub != fronts[0][2]:
            heapq.heappop(fronts)
            if prof is not None:
                prof.heap_invalidate("@front")
        live = self._wake is not None and not self._wake.processed
        if not fronts:
            if live:
                self._generation += 1
                self._wake.void()
                self._wake = None
            return
        deadline = fronts[0][0]
        if live:
            if deadline == self._wake_deadline:
                return  # armed wake already fires at the right time
            self._wake.void()
        self._generation += 1
        generation = self._generation
        wake = self.sim.timeout(max(0.0, deadline - self.sim.now))
        wake.add_callback(
            lambda _evt, g=generation: self._on_wake_sharded(g)
        )
        self._wake = wake
        self._wake_deadline = deadline

    def _on_wake_sharded(self, generation: int) -> None:
        if generation != self._generation:
            return  # stale wake-up: the front heap changed since
        now = self.sim.now
        fronts = self._front_heap
        prof = self.profile
        finished: List[Transfer] = []
        while fronts:
            front, name, pub = fronts[0]
            shard = self._shards[name]
            if shard.pub != pub:
                heapq.heappop(fronts)
                if prof is not None:
                    prof.heap_invalidate("@front")
                continue
            if front > now:
                break
            heapq.heappop(fronts)
            if prof is not None:
                prof.heap_pop("@front")
            self._drain_shard(shard, now, finished)
            self._touched.add(name)
        if finished:
            seeds: List[Link] = []
            for transfer in sorted(finished, key=lambda t: t.id):
                seeds.extend(transfer.links)
                self._finish(transfer)
            self._recompute_incremental(seeds)
        else:
            self._arm_wake_sharded()

    def _drain_shard(
        self, shard: _Shard, now: float, finished: List[Transfer]
    ) -> None:
        """Pop one shard's due entries — the incremental drain loop,
        scoped to the shard.  A shard whose published front is later
        than ``now`` provably has no due entry (the front *is* its
        minimum valid deadline), which is why undrained shards need no
        scan at all."""
        heap = shard.heap
        prof = self.profile
        while heap:
            deadline, tid, token = heap[0]
            if self._tokens.get(tid) != token:
                heapq.heappop(heap)
                if prof is not None:
                    prof.heap_invalidate(shard.name)
                continue
            if deadline > now:
                break
            heapq.heappop(heap)
            if prof is not None:
                prof.heap_pop(shard.name)
            transfer = self._active[tid]
            self._settle_one(transfer)
            if transfer.remaining_mb <= _EPS_MB:
                finished.append(transfer)
                continue
            # Same force-finish rule as the incremental drain: a
            # re-predicted deadline that cannot advance the clock
            # finishes now, or progress stalls on float residue.
            deadline = (
                transfer.settled_s
                + transfer.remaining_mb * MBIT_PER_MB / transfer.rate_mbps
            )
            if deadline <= now:
                finished.append(transfer)
            else:
                token = next(self._token_seq)
                self._tokens[tid] = token
                heapq.heappush(heap, (deadline, tid, token))
                if prof is not None:
                    prof.heap_push(shard.name)

    def _assert_reference_rates(self) -> None:
        """Compare live rates against the scalar full-fill oracle
        (exact equality — max-min decomposes over components with
        identical arithmetic, so any drift is a bug)."""
        expected = self.reference_rates()
        actual = {tid: t.rate_mbps for tid, t in self._active.items()}
        if actual != expected:
            diff = {
                tid: (actual.get(tid), expected.get(tid))
                for tid in sorted(set(expected) | set(actual))
                if actual.get(tid) != expected.get(tid)
            }
            raise AssertionError(
                f"recompute diverged from the full-fill oracle at "
                f"t={self.sim.now}: {diff}"
            )
