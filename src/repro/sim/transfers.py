"""Time-resolved transfer engine: shared links, fair share, cancellation.

The paper's pull model resolves every transfer analytically — an
isolated ``Size / BW`` sleep that never contends with anything.  This
module is the alternative: transfers *occupy* links over simulated
time.  Each link is a capacity shared among the transfers crossing it;
rates follow **max-min fairness** (progressive filling), recomputed on
every transfer start, finish, and cancellation.  A transfer traverses
a small path of links (source uplink → channel → destination downlink,
as built by :meth:`~repro.model.network.NetworkModel.transfer_path`)
and its rate is set by the tightest bottleneck along that path.

On top of the rate model the engine enforces **per-device concurrent
upload budgets** (a peer can seed only so many transfers at once —
EdgePier's seeder-contention observation) and supports **mid-transfer
cancellation** (a departing peer fails its in-flight uploads, and the
freed bandwidth is redistributed immediately).

Which model a simulation uses is selected by :class:`TransferModel`:
``ANALYTIC`` keeps the paper-faithful instant-accounting path bit-for-
bit, ``TIME_RESOLVED`` routes transfers through this engine.
"""

from __future__ import annotations

import enum
import itertools
from typing import Dict, List, Optional, Tuple

from ..model.units import BYTES_PER_MB, bytes_to_mb, MBIT_PER_MB, transfer_time_s
from .engine import Simulator
from .events import Event

#: Residual payload (in MB) below which a transfer counts as finished.
#: Far above float noise accumulated by settling (≈1e-13 MB), far below
#: one byte (1e-6 MB), so no real payload is ever silently dropped.
_EPS_MB = 1e-9


class TransferModel(enum.Enum):
    """How the simulation turns bytes into elapsed time."""

    #: The paper's model: ``Size / BW`` computed analytically, slept in
    #: one piece, no contention.  Seed experiments reproduce bit-for-bit.
    ANALYTIC = "analytic"
    #: Transfers occupy shared links over time via :class:`TransferEngine`.
    TIME_RESOLVED = "time-resolved"


class UploadBudgetExceeded(RuntimeError):
    """The source device is already at its concurrent-upload budget."""


class TransferCancelled(Exception):
    """Delivered to waiters of a transfer that was cancelled mid-flight."""

    def __init__(self, transfer: "Transfer", reason: str = "") -> None:
        super().__init__(
            f"transfer {transfer.src}->{transfer.dst} cancelled"
            + (f": {reason}" if reason else "")
        )
        self.transfer = transfer
        self.reason = reason


class Link:
    """One shared channel: a capacity and the transfers crossing it."""

    __slots__ = ("name", "capacity_mbps", "transfers", "peak_utilisation_mbps")

    def __init__(self, name: str, capacity_mbps: float) -> None:
        if capacity_mbps <= 0:
            raise ValueError(f"link {name!r} capacity must be > 0")
        self.name = name
        self.capacity_mbps = capacity_mbps
        #: Active transfers keyed by transfer id (insertion ordered —
        #: determinism depends on it).
        self.transfers: Dict[int, "Transfer"] = {}
        #: Highest simultaneous allocated rate ever observed (tests use
        #: this to check fair shares never oversubscribe the link).
        self.peak_utilisation_mbps = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Link({self.name!r}, {self.capacity_mbps} Mbit/s, "
            f"{len(self.transfers)} active)"
        )


class Transfer:
    """One payload moving through a path of shared links."""

    __slots__ = (
        "id",
        "src",
        "dst",
        "digest",
        "size_bytes",
        "src_is_registry",
        "links",
        "latency_s",
        "done",
        "requested_s",
        "completed_s",
        "cancelled",
        "remaining_mb",
        "rate_mbps",
        "active",
    )

    def __init__(
        self,
        transfer_id: int,
        src: str,
        dst: str,
        size_bytes: int,
        links: Tuple[Link, ...],
        latency_s: float,
        done: Event,
        requested_s: float,
        src_is_registry: bool,
        digest: str,
    ) -> None:
        self.id = transfer_id
        self.src = src
        self.dst = dst
        self.digest = digest
        self.size_bytes = size_bytes
        self.src_is_registry = src_is_registry
        self.links = links
        self.latency_s = latency_s
        self.done = done
        self.requested_s = requested_s
        self.completed_s: Optional[float] = None
        self.cancelled = False
        self.remaining_mb = bytes_to_mb(size_bytes)
        self.rate_mbps = 0.0
        #: True while the transfer occupies its links (past latency,
        #: not yet finished/cancelled).
        self.active = False

    @property
    def lower_bound_s(self) -> float:
        """Uncontended completion time: latency + size over the
        narrowest link of the path.  No schedule can beat it."""
        if not self.links:
            return self.latency_s
        bottleneck = min(link.capacity_mbps for link in self.links)
        return self.latency_s + transfer_time_s(
            bytes_to_mb(self.size_bytes), bottleneck
        )

    @property
    def seconds(self) -> Optional[float]:
        """Wall-clock (simulated) duration; None while in flight."""
        if self.completed_s is None:
            return None
        return self.completed_s - self.requested_s

    @property
    def moved_bytes(self) -> int:
        """Payload bytes already delivered (settled progress).

        Exact for finished/cancelled transfers — the engine settles
        progress before failing a cancelled transfer's event — so this
        is what waste accounting reads when a mid-flight fallback
        abandons a transfer's delivered bytes.
        """
        done_mb = bytes_to_mb(self.size_bytes) - self.remaining_mb
        moved = int(round(done_mb * BYTES_PER_MB))
        return max(0, min(self.size_bytes, moved))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "cancelled" if self.cancelled
            else "done" if self.completed_s is not None
            else "active" if self.active
            else "latency"
        )
        return (
            f"Transfer#{self.id}({self.src}->{self.dst}, "
            f"{self.size_bytes} B, {state})"
        )


class TransferEngine:
    """Shared-bandwidth transfer scheduler on the DES clock.

    One engine serves one simulation: it owns the :class:`Link` objects
    (materialised lazily from the network's
    :meth:`~repro.model.network.NetworkModel.transfer_path` specs),
    tracks every in-flight :class:`Transfer`, and keeps all rates
    max-min fair.  Rate recomputation runs on every start, finish, and
    cancellation and costs ``O(active transfers + involved links)`` —
    there is no per-tick work, so idle links are free.

    Upload budgets
    --------------
    ``default_upload_budget`` caps concurrent uploads *per device
    source* (registries are exempt: their fan-out is the CDN's
    problem, modelled by their uplink capacity instead).  A saturated
    source makes :meth:`start` raise :class:`UploadBudgetExceeded`;
    callers re-resolve to another source.
    """

    def __init__(
        self,
        sim: Simulator,
        network,
        default_upload_budget: Optional[int] = None,
    ) -> None:
        if default_upload_budget is not None and default_upload_budget < 0:
            raise ValueError(
                f"default_upload_budget must be >= 0, got {default_upload_budget}"
            )
        self.sim = sim
        self.network = network
        self.default_upload_budget = default_upload_budget
        self._links: Dict[str, Link] = {}
        self._active: Dict[int, Transfer] = {}
        self._uploads: Dict[str, Dict[int, Transfer]] = {}
        self._inbound: Dict[Tuple[str, str], Transfer] = {}
        self._budgets: Dict[str, Optional[int]] = {}
        self._ids = itertools.count()
        self._clock_s = sim.now
        self._generation = 0
        self._wake: Optional[Event] = None
        # diagnostics
        self.started = 0
        self.completed = 0
        self.cancellations = 0
        self.recomputes = 0
        self.bytes_completed = 0

    # ------------------------------------------------------------------
    # upload budgets
    # ------------------------------------------------------------------
    def set_upload_budget(self, device: str, budget: Optional[int]) -> None:
        """Override the concurrent-upload budget for one device."""
        if budget is not None and budget < 0:
            raise ValueError(f"upload budget must be >= 0, got {budget}")
        self._budgets[device] = budget

    def upload_budget(self, device: str) -> Optional[int]:
        return self._budgets.get(device, self.default_upload_budget)

    def uploads_in_flight(self, device: str) -> int:
        return len(self._uploads.get(device, ()))

    def can_upload(self, device: str) -> bool:
        """Whether ``device`` may start one more upload right now."""
        budget = self.upload_budget(device)
        return budget is None or self.uploads_in_flight(device) < budget

    # ------------------------------------------------------------------
    # starting / finishing / cancelling
    # ------------------------------------------------------------------
    def start(
        self,
        src: str,
        dst: str,
        size_bytes: int,
        src_is_registry: bool = False,
        digest: str = "",
    ) -> Transfer:
        """Begin moving ``size_bytes`` from ``src`` to ``dst``.

        Returns a :class:`Transfer` whose ``done`` event fires (with
        the transfer as value) at completion, or fails with
        :class:`TransferCancelled` if cancelled.  Raises
        :class:`UploadBudgetExceeded` if a *device* source is already
        at its budget — no slot is consumed in that case.
        """
        if size_bytes < 0:
            raise ValueError(f"negative transfer size: {size_bytes}")
        if not src_is_registry and not self.can_upload(src):
            raise UploadBudgetExceeded(
                f"{src!r} is at its upload budget "
                f"({self.uploads_in_flight(src)} in flight)"
            )
        specs, latency_s = self.network.transfer_path(
            src, dst, src_is_registry=src_is_registry
        )
        links = tuple(self._link(spec.name, spec.capacity_mbps) for spec in specs)
        transfer = Transfer(
            transfer_id=next(self._ids),
            src=src,
            dst=dst,
            size_bytes=size_bytes,
            links=links,
            latency_s=latency_s,
            done=self.sim.event(),
            requested_s=self.sim.now,
            src_is_registry=src_is_registry,
            digest=digest,
        )
        self.started += 1
        if not src_is_registry:
            self._uploads.setdefault(src, {})[transfer.id] = transfer
        if digest:
            self._inbound[(dst, digest)] = transfer
        if latency_s > 0:
            handshake = self.sim.timeout(latency_s)
            handshake.add_callback(lambda _evt, t=transfer: self._activate(t))
        else:
            self._activate(transfer)
        return transfer

    def cancel(self, transfer: Transfer, reason: str = "") -> bool:
        """Abort an in-flight transfer; its bandwidth frees immediately.

        Returns False (no-op) if the transfer already completed or was
        already cancelled; otherwise fails the transfer's ``done``
        event with :class:`TransferCancelled`.
        """
        if transfer.cancelled or transfer.completed_s is not None:
            return False
        transfer.cancelled = True
        self.cancellations += 1
        self._release_slot(transfer)
        if transfer.active:
            self._settle()
            self._detach(transfer)
            self._recompute()
        transfer.done.fail(TransferCancelled(transfer, reason))
        return True

    def cancel_uploads_from(self, device: str, reason: str = "") -> int:
        """Cancel every in-flight upload seeded by ``device``.

        The device-departure hook: a peer leaving the swarm takes its
        uploads with it.  Returns the number of transfers cancelled.
        """
        victims = sorted(
            self._uploads.get(device, {}).values(), key=lambda t: t.id
        )
        for transfer in victims:
            self.cancel(transfer, reason or f"{device} departed")
        return len(victims)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def active_transfers(self) -> List[Transfer]:
        return list(self._active.values())

    def inflight_to(self, dst: str, digest: str) -> Optional[Transfer]:
        """The transfer currently landing ``digest`` on ``dst``, if any.

        Concurrent pulls on one device use this to *join* a download
        another pull already started (one reservation, one payload on
        the wire) instead of fetching the layer twice.
        """
        return self._inbound.get((dst, digest))

    def link(self, name: str) -> Optional[Link]:
        return self._links.get(name)

    def links(self) -> List[Link]:
        return list(self._links.values())

    def estimated_rate_mbps(
        self, src: str, dst: str, src_is_registry: bool = False
    ) -> float:
        """Fair-share rate a transfer started *now* would roughly get.

        Walks the ``src → dst`` path and takes, per link, the equal
        split among the link's current occupants plus the newcomer —
        the first-order max-min estimate (the true allocation can be
        higher when other occupants are bottlenecked elsewhere).  Links
        with no live state count at full capacity.  Loopback is
        ``inf``.  This is the utilisation signal contention-aware
        schedulers consume instead of the analytic nominal bandwidth.
        """
        specs, _latency_s = self.network.transfer_path(
            src, dst, src_is_registry=src_is_registry
        )
        return self._share_over(specs)

    def _share_over(self, specs) -> float:
        rate = float("inf")
        for spec in specs:
            link = self._links.get(spec.name)
            occupants = len(link.transfers) if link is not None else 0
            rate = min(rate, spec.capacity_mbps / (occupants + 1))
        return rate

    def estimated_transfer_s(
        self, src: str, dst: str, size_mb: float, src_is_registry: bool = False
    ) -> float:
        """Contention-aware counterpart of ``Channel.transfer_time_s``."""
        specs, latency_s = self.network.transfer_path(
            src, dst, src_is_registry=src_is_registry
        )
        if not specs or size_mb <= 0:
            return 0.0
        return latency_s + transfer_time_s(size_mb, self._share_over(specs))

    def peak_oversubscription(self) -> float:
        """Worst observed ``allocated / capacity`` over all links.

        Max-min fairness guarantees this never exceeds 1 (modulo float
        noise); the Hypothesis invariant tests pin it down.
        """
        worst = 0.0
        for link in self._links.values():
            worst = max(worst, link.peak_utilisation_mbps / link.capacity_mbps)
        return worst

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _link(self, name: str, capacity_mbps: float) -> Link:
        link = self._links.get(name)
        if link is None:
            link = Link(name, capacity_mbps)
            self._links[name] = link
        elif link.capacity_mbps != capacity_mbps:
            raise ValueError(
                f"link {name!r} capacity changed mid-simulation "
                f"({link.capacity_mbps} -> {capacity_mbps} Mbit/s)"
            )
        return link

    def _activate(self, transfer: Transfer) -> None:
        """Latency elapsed: the transfer joins its links."""
        if transfer.cancelled:
            return
        if transfer.remaining_mb <= _EPS_MB or not transfer.links:
            # Zero payload (or loopback): done as soon as the
            # handshake completes — it never occupies a link.
            self._finish(transfer)
            return
        self._settle()
        transfer.active = True
        self._active[transfer.id] = transfer
        for link in transfer.links:
            link.transfers[transfer.id] = transfer
        self._recompute()

    def _detach(self, transfer: Transfer) -> None:
        transfer.active = False
        self._active.pop(transfer.id, None)
        for link in transfer.links:
            link.transfers.pop(transfer.id, None)

    def _release_slot(self, transfer: Transfer) -> None:
        if not transfer.src_is_registry:
            slots = self._uploads.get(transfer.src)
            if slots is not None:
                slots.pop(transfer.id, None)
                if not slots:
                    del self._uploads[transfer.src]
        if transfer.digest:
            key = (transfer.dst, transfer.digest)
            if self._inbound.get(key) is transfer:
                del self._inbound[key]

    def _finish(self, transfer: Transfer) -> None:
        self._detach(transfer)
        self._release_slot(transfer)
        transfer.completed_s = self.sim.now
        transfer.remaining_mb = 0.0
        transfer.rate_mbps = 0.0
        self.completed += 1
        self.bytes_completed += transfer.size_bytes
        transfer.done.succeed(transfer)

    def _settle(self) -> None:
        """Account progress made at the current rates since the last
        rate change, bringing every ``remaining_mb`` up to date."""
        dt = self.sim.now - self._clock_s
        self._clock_s = self.sim.now
        if dt <= 0:
            return
        for transfer in self._active.values():
            if transfer.rate_mbps > 0:
                transfer.remaining_mb = max(
                    0.0,
                    transfer.remaining_mb - transfer.rate_mbps / MBIT_PER_MB * dt,
                )

    def _recompute(self) -> None:
        """Progressive filling: assign max-min fair rates, then arm a
        wake-up at the earliest predicted completion."""
        self.recomputes += 1
        self._generation += 1
        # Retract the previously armed wake-up: a stale one must not
        # drag the clock out to a prediction that no longer holds
        # (e.g. the sole transfer on a slow link was just cancelled).
        if self._wake is not None and not self._wake.processed:
            self._wake.void()
        self._wake = None
        if not self._active:
            return
        # Only links that carry at least one active transfer matter.
        capacity_left: Dict[str, float] = {}
        unfrozen_count: Dict[str, int] = {}
        involved: List[Link] = []
        for transfer in self._active.values():
            for link in transfer.links:
                if link.name not in capacity_left:
                    capacity_left[link.name] = link.capacity_mbps
                    unfrozen_count[link.name] = 0
                    involved.append(link)
                unfrozen_count[link.name] += 1
        frozen: Dict[int, bool] = {}
        remaining = len(self._active)
        while remaining > 0:
            # Bottleneck link: the one whose equal split is smallest.
            best_link: Optional[Link] = None
            best_share = 0.0
            for link in involved:
                count = unfrozen_count[link.name]
                if count == 0:
                    continue
                share = capacity_left[link.name] / count
                if best_link is None or share < best_share or (
                    share == best_share and link.name < best_link.name
                ):
                    best_link, best_share = link, share
            assert best_link is not None  # remaining > 0 implies a link
            for tid in sorted(best_link.transfers):
                if tid in frozen:
                    continue
                transfer = best_link.transfers[tid]
                transfer.rate_mbps = best_share
                frozen[tid] = True
                remaining -= 1
                for link in transfer.links:
                    capacity_left[link.name] = max(
                        0.0, capacity_left[link.name] - best_share
                    )
                    unfrozen_count[link.name] -= 1
        for link in involved:
            link.peak_utilisation_mbps = max(
                link.peak_utilisation_mbps,
                link.capacity_mbps - capacity_left[link.name],
            )
        # Earliest completion under the new rates.
        next_dt = float("inf")
        for transfer in self._active.values():
            if transfer.rate_mbps > 0:
                next_dt = min(
                    next_dt,
                    transfer.remaining_mb * MBIT_PER_MB / transfer.rate_mbps,
                )
        if next_dt == float("inf"):  # pragma: no cover - defensive
            return
        generation = self._generation
        wake = self.sim.timeout(next_dt)
        wake.add_callback(lambda _evt, g=generation: self._on_wake(g))
        self._wake = wake

    def _on_wake(self, generation: int) -> None:
        if generation != self._generation:
            return  # stale wake-up: rates changed since it was armed
        self._settle()
        finished = [
            t for t in self._active.values() if t.remaining_mb <= _EPS_MB
        ]
        for transfer in sorted(finished, key=lambda t: t.id):
            self._finish(transfer)
        self._recompute()
