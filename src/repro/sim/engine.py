"""Generator-based process engine on top of :mod:`repro.sim.events`.

A *process* is a Python generator that yields :class:`~repro.sim.events.Event`
objects; the engine resumes it with the event's value when the event
fires.  ``AllOf`` composes events into a barrier — the synchronisation
primitive used by the orchestrator to model the paper's stage barriers.

Example
-------
>>> sim = Simulator()
>>> log = []
>>> def worker(name, delay):
...     yield sim.timeout(delay)
...     log.append((sim.now, name))
>>> _ = sim.process(worker("a", 2.0))
>>> _ = sim.process(worker("b", 1.0))
>>> sim.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from __future__ import annotations

from typing import Any, Generator, Iterable, List, Optional

from .events import Event, EventQueue, Timeout

ProcessGenerator = Generator[Event, Any, Any]


class Interrupt(Exception):
    """Thrown into a process that another process interrupts."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """A running process; itself an event that fires on termination.

    The event's value is the generator's return value; uncaught
    exceptions propagate to :meth:`Simulator.run` (there is no silent
    failure mode — a crashed process is a crashed simulation).
    """

    __slots__ = ("_generator", "_target")

    def __init__(self, env: EventQueue, generator: ProcessGenerator) -> None:
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        bootstrap = Event(env)
        bootstrap.succeed(None)
        bootstrap.add_callback(self._resume)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise RuntimeError("cannot interrupt a finished process")
        poke = Event(self.env)
        poke._value = Interrupt(cause)
        poke._ok = False
        poke._triggered = True
        self.env.schedule(poke, 0.0)
        poke.add_callback(self._resume)

    def _resume(self, event: Event) -> None:
        if self.triggered:  # already finished (e.g. interrupted then done)
            # A failure aimed at a finished process (an interrupt that
            # raced with completion) has no one left to handle it;
            # consume it so run() doesn't crash a healthy simulation.
            if not event.ok:
                event.mark_consumed()
            return
        if self._target is not None and event is not self._target:
            # A stale wake-up (interrupt raced with the awaited event):
            # only deliver interrupts; ignore anything else.  A *real*
            # failure of an abandoned event is deliberately NOT marked
            # consumed — a crashed child process must still re-raise
            # from run() (no silent failure mode).
            if not isinstance(event.value, Interrupt):
                return
        self._target = None
        try:
            if event.ok:
                next_event = self._generator.send(event.value)
            else:
                # The failure is being delivered into a generator: it is
                # consumed here whether or not the generator survives it
                # (if it doesn't, the exception propagates out of this
                # frame and run() re-raises it directly).
                event.mark_consumed()
                next_event = self._generator.throw(event.value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        if not isinstance(next_event, Event):
            raise TypeError(
                f"process yielded {next_event!r}; processes must yield Event"
            )
        self._target = next_event
        next_event.add_callback(self._resume)


class AllOf(Event):
    """Barrier event: fires once every child event has fired.

    The value is the list of child values in construction order.  If
    any child fails, the barrier fails with that child's exception.
    """

    __slots__ = ("_children", "_remaining")

    def __init__(self, env: EventQueue, events: Iterable[Event]) -> None:
        super().__init__(env)
        self._children: List[Event] = list(events)
        self._remaining = len(self._children)
        if self._remaining == 0:
            self.succeed([])
            return
        for child in self._children:
            child.add_callback(self._on_child)

    def _on_child(self, child: Event) -> None:
        if self.triggered:
            # Barrier already fired (necessarily as a failure — success
            # requires every child to have succeeded).  A later failing
            # child is still adopted by the barrier: consume it so it
            # cannot re-raise from run() behind the waiter's back.
            if not child.ok:
                child.mark_consumed()
            return
        if not child.ok:
            # The barrier adopts the child's failure: the child is
            # consumed here, and whether the failure is ultimately
            # handled is decided by whoever waits on the barrier.
            child.mark_consumed()
            self.fail(child.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([c.value for c in self._children])


class Simulator:
    """Facade bundling the event queue with process management."""

    def __init__(self) -> None:
        self._queue = EventQueue()

    @property
    def now(self) -> float:
        return self._queue.now

    def event(self) -> Event:
        """A fresh untriggered event (manual trigger)."""
        return Event(self._queue)

    def timeout(
        self, delay: float, value: Any = None, daemon: bool = False
    ) -> Timeout:
        """An event firing ``delay`` seconds from now.

        ``daemon=True`` marks a background wake-up that does not keep
        a horizonless :meth:`run` alive (see :class:`Timeout`).
        """
        return Timeout(self._queue, delay, value, daemon=daemon)

    def process(self, generator: ProcessGenerator) -> Process:
        """Start a process; returns its completion event."""
        return Process(self._queue, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Barrier over ``events``."""
        return AllOf(self._queue, events)

    def run(self, until: Optional[float] = None) -> float:
        """Process events until the queue drains or ``until`` is reached.

        Returns the simulation time when the run stopped.  Failure
        events that nothing waited on re-raise here so that errors
        cannot vanish.  A horizonless run additionally stops once only
        *daemon* events remain (periodic background processes — gossip
        rounds, churn — would otherwise keep the queue alive forever);
        under a horizon, daemon events are processed like any other up
        to ``until``.
        """
        while not self._queue.empty():
            if until is None and self._queue.foreground_pending() == 0:
                return self._queue.now
            if until is not None and self._queue.peek_time() > until:
                self._now_to(until)
                return self._queue.now
            event = self._queue.step()
            if not event.ok and event.callbacks is None and not _was_consumed(event):
                raise event.value
        if until is not None and until > self._queue.now:
            self._now_to(until)
        return self._queue.now

    def _now_to(self, time: float) -> None:
        self._queue._now = max(self._queue._now, time)


def _was_consumed(event: Event) -> bool:
    """True when a failed event was delivered to at least one waiter."""
    # Process._resume marks consumption by re-raising inside the
    # generator; if the event is a Process itself, its failure is its
    # value and run() should re-raise unless someone waited on it.
    return bool(getattr(event, "_consumed", False))
