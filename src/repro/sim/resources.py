"""Counted resources with FIFO queuing for the DES engine.

:class:`Resource` models a pool of identical tokens (e.g. the cores of
an edge device).  Processes ``yield resource.request(n)`` to acquire
``n`` tokens and call ``resource.release(n)`` when done; waiters are
served strictly FIFO, which keeps simulations deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

from .engine import Simulator
from .events import Event


class Resource:
    """A counted resource (semaphore) with FIFO fairness.

    Parameters
    ----------
    sim:
        The owning simulator.
    capacity:
        Total number of tokens.  Must be >= 1.
    """

    def __init__(self, sim: Simulator, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._sim = sim
        self._capacity = capacity
        self._available = capacity
        self._waiters: Deque[Tuple[Event, int]] = deque()

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def available(self) -> int:
        """Tokens currently free."""
        return self._available

    @property
    def in_use(self) -> int:
        return self._capacity - self._available

    @property
    def queue_length(self) -> int:
        """Number of pending requests."""
        return len(self._waiters)

    def request(self, amount: int = 1) -> Event:
        """Acquire ``amount`` tokens; the returned event fires on grant."""
        if amount < 1:
            raise ValueError(f"request amount must be >= 1, got {amount}")
        if amount > self._capacity:
            raise ValueError(
                f"request of {amount} exceeds capacity {self._capacity}"
            )
        event = self._sim.event()
        self._waiters.append((event, amount))
        self._dispatch()
        return event

    def release(self, amount: int = 1) -> None:
        """Return ``amount`` tokens to the pool."""
        if amount < 1:
            raise ValueError(f"release amount must be >= 1, got {amount}")
        if self._available + amount > self._capacity:
            raise RuntimeError(
                f"release of {amount} overflows capacity "
                f"({self._available}/{self._capacity} free)"
            )
        self._available += amount
        self._dispatch()

    def _dispatch(self) -> None:
        # Strict FIFO: the head blocks everyone behind it even if a
        # later, smaller request would fit (no starvation of big jobs).
        while self._waiters:
            event, amount = self._waiters[0]
            if amount > self._available:
                return
            self._waiters.popleft()
            self._available -= amount
            event.succeed(amount)
