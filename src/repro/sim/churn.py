"""Stochastic swarm churn: seeded departure / re-join processes.

The transfer engine can already *react* to churn (a departing seeder's
uploads are cancelled, customers re-resolve), but arrival and departure
themselves were scripted by tests.  This module makes churn a process:
every swarm member alternates exponentially-distributed online and
offline periods, departing via
:meth:`~repro.registry.p2p.PeerSwarm.remove_device` and re-joining via
:meth:`~repro.registry.p2p.PeerSwarm.add_device` **with the cache it
left with** — the re-join-with-stale-cache case that makes gossip
views interesting (the returner's layers may have been evicted
elsewhere, and everyone else's view of the returner is one incarnation
behind).

Draws come from per-device named streams of a
:class:`~repro.sim.rng.RngRegistry`, so a device's churn timeline is a
pure function of ``(seed, device name)`` — adding devices or reordering
process start-up never perturbs anyone else's timeline.

Departure policy
----------------
A device departs only when it is *idle* (no in-flight pull, per the
caller's ``is_busy`` probe) and at least ``min_online`` members would
remain.  A blocked departure is skipped — the device redraws its next
departure time and stays online.  Real fleets drain before shutdown;
modelling mid-pull vanishing is the transfer engine's cancellation
path, already exercised by :meth:`PeerSwarm.remove_device` directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from .rng import RngRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..registry.cache import ImageCache
    from ..registry.p2p import PeerSwarm
    from ..sim.engine import Simulator
    from ..sim.transfers import TransferEngine


@dataclass(frozen=True)
class ChurnEvent:
    """One membership change performed by the churn process."""

    time_s: float
    kind: str  # "depart" | "rejoin"
    device: str


@dataclass(frozen=True)
class ChurnConfig:
    """Knobs of one churn regime.

    ``mean_uptime_s`` / ``mean_downtime_s`` parameterise the
    exponential holding times; ``min_online`` floors the online member
    count so the swarm never churns itself empty.
    """

    mean_uptime_s: float = 600.0
    mean_downtime_s: float = 120.0
    min_online: int = 2

    def __post_init__(self) -> None:
        if self.mean_uptime_s <= 0:
            raise ValueError(
                f"mean_uptime_s must be > 0, got {self.mean_uptime_s}"
            )
        if self.mean_downtime_s <= 0:
            raise ValueError(
                f"mean_downtime_s must be > 0, got {self.mean_downtime_s}"
            )
        if self.min_online < 1:
            raise ValueError(f"min_online must be >= 1, got {self.min_online}")


class ChurnProcess:
    """Drives stochastic membership of one :class:`PeerSwarm`.

    Parameters
    ----------
    sim / swarm:
        The simulation clock and the swarm whose membership churns.
    rng:
        Root registry; each device draws from its own
        ``churn.<device>`` stream.
    config:
        The churn regime (holding times, online floor).
    engine:
        When given, a departure cancels the device's in-flight uploads
        (the :meth:`PeerSwarm.remove_device` hook).
    is_busy:
        Optional probe; a device reporting busy postpones departure.
    """

    def __init__(
        self,
        sim: "Simulator",
        swarm: "PeerSwarm",
        rng: RngRegistry,
        config: ChurnConfig = ChurnConfig(),
        engine: Optional["TransferEngine"] = None,
        is_busy: Optional[Callable[[str], bool]] = None,
    ) -> None:
        self.sim = sim
        self.swarm = swarm
        self.rng = rng
        self.config = config
        self.engine = engine
        self.is_busy = is_busy
        self.events: List[ChurnEvent] = []
        self.departures = 0
        self.rejoins = 0
        self.blocked_departures = 0
        self._offline: Dict[str, tuple] = {}  # device -> (cache, region)
        self._started = False
        # Observed session statistics: completed online-session lengths
        # (set at depart) and offline-gap lengths (set at rejoin) per
        # device.  These are what churn-aware replication targets
        # consume — *measured* behaviour, not the configured means.
        self._online_since: Dict[str, float] = {}
        self._offline_since: Dict[str, float] = {}
        self._session_lengths: Dict[str, List[float]] = {}
        self._downtime_lengths: Dict[str, List[float]] = {}
        #: Optional telemetry trace sink (duck-typed, None = off):
        #: receives ``churn.depart`` / ``churn.rejoin`` records.
        self.trace = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn one churn process per *current* swarm member."""
        if self._started:
            raise RuntimeError("churn process already started")
        self._started = True
        for device in sorted(self.swarm.devices()):
            self._online_since[device] = self.sim.now
            self.sim.process(self._device_loop(device))

    def _device_loop(self, device: str):
        stream = self.rng.stream(f"churn.{device}")
        up = self.config.mean_uptime_s
        down = self.config.mean_downtime_s
        # Daemon wake-ups: churn ticks forever but must not keep a
        # horizonless sim.run() from terminating.
        while True:
            yield self.sim.timeout(float(stream.exponential(up)), daemon=True)
            if not self._can_depart(device):
                self.blocked_departures += 1
                continue  # stay online; redraw the next departure time
            self._depart(device)
            yield self.sim.timeout(
                float(stream.exponential(down)), daemon=True
            )
            self._rejoin(device)

    # ------------------------------------------------------------------
    # membership changes
    # ------------------------------------------------------------------
    def _can_depart(self, device: str) -> bool:
        if device in self._offline:  # pragma: no cover - defensive
            return False
        if len(self.swarm.devices()) <= self.config.min_online:
            return False
        if self.is_busy is not None and self.is_busy(device):
            return False
        return True

    def _depart(self, device: str) -> None:
        cache = self.swarm.index.cache_of(device)
        region = self.swarm.region_of(device)
        self.swarm.remove_device(device, engine=self.engine)
        self._offline[device] = (cache, region)
        online_since = self._online_since.pop(device, None)
        if online_since is not None:
            self._session_lengths.setdefault(device, []).append(
                self.sim.now - online_since
            )
        self._offline_since[device] = self.sim.now
        self.departures += 1
        self.events.append(ChurnEvent(self.sim.now, "depart", device))
        if self.trace is not None:
            self.trace.record(self.sim.now, "churn.depart", device)

    def _rejoin(self, device: str) -> None:
        cache, region = self._offline.pop(device)
        # The cache comes back exactly as it left — a *stale* replica
        # set from the swarm's perspective (gossip bumps the device's
        # incarnation so its fresh announcements outrank old rumours).
        self.swarm.add_device(device, cache, region=region)
        offline_since = self._offline_since.pop(device, None)
        if offline_since is not None:
            self._downtime_lengths.setdefault(device, []).append(
                self.sim.now - offline_since
            )
        self._online_since[device] = self.sim.now
        self.rejoins += 1
        self.events.append(ChurnEvent(self.sim.now, "rejoin", device))
        if self.trace is not None:
            self.trace.record(self.sim.now, "churn.rejoin", device)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def is_online(self, device: str) -> bool:
        return device not in self._offline

    def offline_devices(self) -> List[str]:
        return sorted(self._offline)

    # ------------------------------------------------------------------
    # observed session statistics (consumed by churn-aware replication)
    # ------------------------------------------------------------------
    def session_lengths(self, device: str) -> List[float]:
        """Completed online-session lengths observed for ``device``."""
        return list(self._session_lengths.get(device, ()))

    def mean_session_s(self, device: str) -> Optional[float]:
        """Mean *completed* online session (None before any departure).

        The current, still-open session deliberately does not count —
        it would bias short-session devices upward right after a
        re-join.
        """
        lengths = self._session_lengths.get(device)
        if not lengths:
            return None
        return sum(lengths) / len(lengths)

    def mean_downtime_s(self, device: str) -> Optional[float]:
        lengths = self._downtime_lengths.get(device)
        if not lengths:
            return None
        return sum(lengths) / len(lengths)

    def availability(self, device: str) -> float:
        """Observed long-run online fraction of ``device`` in (0, 1].

        ``mean_session / (mean_session + mean_downtime)`` over the
        sessions actually observed.  A device that never departed (or
        has not yet completed a session) counts as fully available —
        churn weighting only discounts *demonstrated* flakiness, so a
        churn-free run is bit-for-bit unaffected.  A device with
        completed sessions but no completed downtime yet uses the
        configured mean downtime as the best available estimate.
        """
        session = self.mean_session_s(device)
        if session is None:
            return 1.0
        downtime = self.mean_downtime_s(device)
        if downtime is None:
            downtime = self.config.mean_downtime_s
        total = session + downtime
        if total <= 0:
            return 1.0
        return max(min(session / total, 1.0), 1e-6)
