"""The simulation facade: one place that assembles and runs a scenario.

:class:`SimulationSession` turns a declarative
:class:`~repro.scenarios.spec.ScenarioSpec` into a wired simulation —
simulator, network, caches, :class:`~repro.registry.p2p.PeerSwarm`,
discovery backend, churn process, transfer engine, registry chain, and
replicator — and exposes ``session.run() -> ModeOutcome``.  Everything
``experiments.p2p.run_mode`` used to wire by hand at sixteen call-site
keywords happens here, driven by the spec's validated sections.

The run loop is a faithful port of the historical ``run_mode`` body:
RNG stream names ("p2p.gossip", "p2p.churn"), process creation order
(pull processes first, replicator last), and accounting are identical,
which keeps every experiment output bit-for-bit pinned to PR 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, Optional

from ..model.device import Arch
from ..registry.base import ImageReference
from ..registry.cache import ImageCache
from ..registry.discovery import GossipDiscovery
from ..registry.p2p import AdaptiveReplicator, P2PRegistry, PeerSwarm
from ..sim.churn import ChurnProcess
from ..sim.engine import Simulator
from ..sim.rng import RngRegistry
from ..sim.transfers import TransferEngine
from ..telemetry import (
    EngineProfile,
    MetricsSampler,
    TraceRecorder,
    active_capture,
)
from .build import SwarmScenario, build_swarm_scenario
from .spec import ScenarioSpec

#: :meth:`ModeOutcome.to_dict` keys whose values depend on wall-clock
#: time (build/run timings, the engine self-profile) rather than on the
#: simulation — every byte-identity surface (differential telemetry
#: tests, sweep ``aggregate_json``) strips them via
#: :func:`deterministic_outcome_dict`.
NONDETERMINISTIC_OUTCOME_KEYS = (
    "wall_build_s",
    "wall_run_s",
    "engine_profile",
)


def deterministic_outcome_dict(data: Dict[str, Any]) -> Dict[str, Any]:
    """An outcome dict minus its wall-clock-dependent keys."""
    return {
        key: value
        for key, value in data.items()
        if key not in NONDETERMINISTIC_OUTCOME_KEYS
    }


@dataclass
class ModeOutcome:
    """Aggregated traffic of one session run."""

    mode: str
    pulls: int = 0
    cache_hits: int = 0
    bytes_by_registry: Dict[str, int] = field(default_factory=dict)
    bytes_from_peers: int = 0
    bytes_replicated: int = 0
    transfer_s: float = 0.0
    replicator: Optional[AdaptiveReplicator] = None
    #: Scheduled pulls that did not finish (time-resolved: still in
    #: flight; analytic: not yet arrived) when the horizon cut the run
    #: off.  Nonzero values mean the byte counters under-report — the
    #: truncation is deliberate but must never be silent.
    unfinished_pulls: int = 0
    #: Pulls whose device was offline (churned out) at arrival time.
    skipped_pulls: int = 0
    #: Stale discovery entries caught by verification across all pulls
    #: plus the replicator (0 under omniscient discovery).
    stale_peer_misses: int = 0
    #: Churn totals (0 without a churn process).
    departures: int = 0
    rejoins: int = 0
    #: Anti-entropy rounds the gossip backend completed (0 omniscient).
    gossip_rounds: int = 0
    #: View records shipped over the gossip metadata plane (0
    #: omniscient) — the wire cost the digest-summary exchange cuts.
    gossip_records_sent: int = 0
    #: Directed gossip payloads dropped in transit (0 omniscient or
    #: with ``gossip_loss_rate=0``).
    gossip_payloads_lost: int = 0
    #: Simulated time at which the *last* pull of the run completed —
    #: the cold-start makespan on a wave schedule (0 with no pulls).
    makespan_s: float = 0.0
    #: Longest single pull latency (completion minus scheduled
    #: arrival).  On a near-simultaneous cold wave this is the wave's
    #: own makespan, independent of where the wave sits on the clock.
    longest_pull_s: float = 0.0
    #: Bytes moved over links and thrown away (mid-flight fallbacks,
    #: losing endgame duplicates); analytic runs always report 0.
    bytes_wasted: int = 0
    #: Duplicate chunk requests issued by the chunked endgame.
    chunk_endgame_dupes: int = 0
    #: Transfers the time-resolved engine's fair-share recompute
    #: visited over the run (0 analytic) — the work counter the
    #: incremental-recompute acceptance ratio is measured on.
    engine_transfers_visited: int = 0
    #: Wall-clock seconds spent assembling the session (scenario build
    #: plus wiring).  Wall-clock, hence nondeterministic — every
    #: byte-identity comparison strips it
    #: (:data:`NONDETERMINISTIC_OUTCOME_KEYS`).
    wall_build_s: float = 0.0
    #: Wall-clock seconds :meth:`SimulationSession.run` took.
    wall_run_s: float = 0.0
    #: :meth:`~repro.telemetry.EngineProfile.summary` of the transfer
    #: engine's self-profile when ``telemetry.profile`` was on (None
    #: otherwise) — wall-clock-derived, nondeterministic like the
    #: timings above.
    engine_profile: Optional[Dict[str, Any]] = None

    @property
    def origin_bytes(self) -> int:
        """Bytes served by hub + regional (the tiers P2P offloads)."""
        return sum(self.bytes_by_registry.values())

    @property
    def hit_ratio(self) -> float:
        return self.cache_hits / self.pulls if self.pulls else 0.0

    def to_dict(self) -> Dict[str, Any]:
        """A plain JSON-safe dict of every counter.

        The live :class:`AdaptiveReplicator` object is summarised to
        its headline numbers (``None`` when the mode ran without one).
        """
        data = {
            "mode": self.mode,
            "pulls": self.pulls,
            "cache_hits": self.cache_hits,
            "hit_ratio": self.hit_ratio,
            "bytes_by_registry": dict(self.bytes_by_registry),
            "origin_bytes": self.origin_bytes,
            "bytes_from_peers": self.bytes_from_peers,
            "bytes_replicated": self.bytes_replicated,
            "transfer_s": self.transfer_s,
            "unfinished_pulls": self.unfinished_pulls,
            "skipped_pulls": self.skipped_pulls,
            "stale_peer_misses": self.stale_peer_misses,
            "departures": self.departures,
            "rejoins": self.rejoins,
            "gossip_rounds": self.gossip_rounds,
            "gossip_records_sent": self.gossip_records_sent,
            "gossip_payloads_lost": self.gossip_payloads_lost,
            "makespan_s": self.makespan_s,
            "longest_pull_s": self.longest_pull_s,
            "bytes_wasted": self.bytes_wasted,
            "chunk_endgame_dupes": self.chunk_endgame_dupes,
            "engine_transfers_visited": self.engine_transfers_visited,
            "wall_build_s": self.wall_build_s,
            "wall_run_s": self.wall_run_s,
            "engine_profile": self.engine_profile,
            "replicator": None,
        }
        if self.replicator is not None:
            data["replicator"] = {
                "actions": self.replicator.total_actions(),
                "bytes_replicated": self.replicator.bytes_replicated,
                "converged": self.replicator.converged(),
            }
        return data


class SimulationSession:
    """Assembles one scenario run and executes its pull schedule.

    ``SimulationSession(spec)`` builds the scenario from the spec's
    topology/workload sections; passing a pre-built ``scenario`` reuses
    it instead — that is how comparative experiments run several
    sessions (different modes, discovery backends, …) over the *same*
    registries, so byte counts stay directly comparable (registry blob
    content is immutable; only diagnostic pull counters accumulate —
    scenarios must not configure a hub rate limiter, and the builder
    never does).  A shared scenario must carry the spec's seed.

    Sessions are single-use: :meth:`run` consumes the simulator state
    and raises on a second call.  After assembly the wired components
    are exposed (``sim``, ``swarm``, ``caches``, ``facade``,
    ``engine``, ``discovery``, ``churn_process``, ``replicator``, and —
    when the spec's ``telemetry`` section or an active
    :class:`~repro.telemetry.TelemetryCapture` enables them —
    ``trace``, ``metrics``, ``engine_profile``) for tests and
    diagnostics.
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        scenario: Optional[SwarmScenario] = None,
    ) -> None:
        t0 = perf_counter()
        self.spec = spec
        if scenario is None:
            scenario = build_swarm_scenario(spec)
        elif scenario.seed != spec.seed:
            raise ValueError(
                f"pre-built scenario seed {scenario.seed} does not match "
                f"spec seed {spec.seed}; derive the spec with "
                f"replace(spec, seed=scenario.seed)"
            )
        self.scenario = scenario
        self._ran = False
        self._assemble()
        self._wall_build_s = perf_counter() - t0

    # -- wiring ---------------------------------------------------------
    def _assemble(self) -> None:
        spec, scenario = self.spec, self.scenario
        self.sim = Simulator()
        self.rng = RngRegistry(scenario.seed)

        self.discovery: Optional[GossipDiscovery] = None
        if spec.discovery.backend == "gossip":
            self.discovery = GossipDiscovery(
                sim=self.sim,
                fanout=spec.discovery.gossip_fanout,
                period_s=spec.discovery.gossip_period_s,
                view_cap=spec.discovery.gossip_view_cap,
                latency_s=spec.discovery.gossip_latency_s,
                exchange=spec.discovery.gossip_exchange,
                loss_rate=spec.discovery.gossip_loss_rate,
                seed=self.rng.derive_seed("p2p.gossip") % (2**32),
            )
            self.swarm = PeerSwarm(scenario.network, discovery=self.discovery)
        else:
            self.swarm = PeerSwarm(scenario.network)
        self.caches: Dict[str, ImageCache] = {}
        for dev in scenario.devices:
            cache = ImageCache(dev.cache_gb, dev.name)
            self.caches[dev.name] = cache
            self.swarm.add_device(dev.name, cache, region=dev.region)

        if spec.mode == "hub-only":
            chain = [scenario.hub]
        else:
            chain = [scenario.regional, scenario.hub]
        self.facade = P2PRegistry(
            self.swarm,
            chain,
            name=spec.mode,
            use_peers=(spec.mode == "hybrid+p2p"),
            chunked=spec.chunks.enabled,
            chunk_size_bytes=spec.chunks.size_bytes,
            chunk_parallel=spec.chunks.parallel,
            chunk_seed=scenario.seed,
        )
        self.engine: Optional[TransferEngine] = None
        if spec.transfer.time_resolved:
            self.engine = TransferEngine(
                self.sim,
                scenario.network,
                default_upload_budget=spec.transfer.upload_budget,
                incremental=(spec.transfer.recompute == "incremental"),
                sharded=(spec.transfer.recompute == "sharded"),
            )

        self._busy: Dict[str, int] = {}
        self.churn_process: Optional[ChurnProcess] = None
        if spec.churn is not None:
            self.churn_process = ChurnProcess(
                self.sim,
                self.swarm,
                self.rng.fork("p2p.churn"),
                config=spec.churn.to_config(),
                engine=self.engine,
                is_busy=lambda device: self._busy.get(device, 0) > 0,
            )
        self.replicator: Optional[AdaptiveReplicator] = None
        if spec.mode == "hybrid+p2p":
            self.replicator = AdaptiveReplicator(
                self.sim,
                self.swarm,
                interval_s=spec.replication.interval_s,
                hot_threshold=spec.replication.hot_threshold,
                target_replicas=spec.replication.target_replicas,
                decay=spec.replication.decay,
                hotness=spec.replication.hotness,
                hot_fraction=spec.replication.hot_fraction,
                engine=self.engine,
                churn=(
                    self.churn_process
                    if spec.replication.churn_aware
                    else None
                ),
            )

        # -- telemetry (observation-only; defaults wire nothing) -------
        # The spec's section and any process-wide capture compose: a
        # capture only ever *adds* recorders, never disables the spec's.
        telemetry = spec.telemetry
        capture = active_capture()
        trace_on = telemetry.trace or (capture is not None and capture.trace)
        period = telemetry.metrics_period_s
        if period is None and capture is not None:
            period = capture.metrics_period_s
        profile_on = telemetry.profile or (
            capture is not None and capture.profile
        )
        label = capture.next_label() if capture is not None else ""
        self.trace: Optional[TraceRecorder] = None
        self.metrics: Optional[MetricsSampler] = None
        self.engine_profile: Optional[EngineProfile] = None
        if trace_on:
            self.trace = TraceRecorder(label=label)
            if self.engine is not None:
                self.engine.trace = self.trace
            if self.discovery is not None:
                self.discovery.trace = self.trace
            if self.churn_process is not None:
                self.churn_process.trace = self.trace
            if self.replicator is not None:
                self.replicator.trace = self.trace
            if self.facade.chunks is not None:
                self.facade.chunks.trace = self.trace
        if period is not None:
            self.metrics = MetricsSampler(period, label=label)
        if profile_on and self.engine is not None:
            self.engine_profile = EngineProfile()
            self.engine.profile = self.engine_profile
        if capture is not None:
            capture.adopt(
                self.trace, self.metrics, self.engine_profile, label
            )

    # -- execution ------------------------------------------------------
    def run(self) -> ModeOutcome:
        """Execute the scenario's pull schedule; single-use."""
        if self._ran:
            raise RuntimeError(
                "a SimulationSession is single-use; build a new one to "
                "re-run the scenario"
            )
        self._ran = True
        t0 = perf_counter()
        spec, scenario = self.spec, self.scenario
        sim, engine, facade = self.sim, self.engine, self.facade
        caches, busy = self.caches, self._busy
        churn_process = self.churn_process
        if churn_process is not None:
            churn_process.start()

        metrics = self.metrics
        if metrics is not None:
            # The sampler loop is the session's only telemetry process.
            # It ticks on daemon timeouts (never extends a horizonless
            # run) and is scheduled *only* when sampling is on, so the
            # default event sequence is untouched.
            discovery, index = self.discovery, self.swarm.index

            def sample_now() -> None:
                metrics.sample(
                    sim.now,
                    engine=engine,
                    caches=caches,
                    discovery=discovery,
                    index=index,
                )

            def metrics_loop():
                sample_now()
                while True:
                    yield sim.timeout(metrics.period_s, daemon=True)
                    sample_now()

            sim.process(metrics_loop())

        outcome = ModeOutcome(mode=spec.mode)

        def account(result) -> None:
            outcome.pulls += 1
            outcome.cache_hits += 1 if result.cache_hit else 0
            outcome.bytes_from_peers += result.bytes_from_peers
            outcome.stale_peer_misses += result.stale_peer_misses
            outcome.transfer_s += result.seconds
            outcome.bytes_wasted += result.bytes_wasted
            outcome.chunk_endgame_dupes += result.chunk_endgame_dupes
            outcome.makespan_s = max(outcome.makespan_s, sim.now)
            for registry, count in result.bytes_by_registry().items():
                outcome.bytes_by_registry[registry] = (
                    outcome.bytes_by_registry.get(registry, 0) + count
                )

        def one_pull(at_s: float, device: str, ref: ImageReference):
            yield sim.timeout(at_s)
            if churn_process is not None and not churn_process.is_online(
                device
            ):
                # The device churned out before its pull arrived; a real
                # workload would reschedule elsewhere — here the skip is
                # counted so byte totals are never silently short.
                outcome.skipped_pulls += 1
                return
            busy[device] = busy.get(device, 0) + 1
            try:
                if engine is None:
                    result = facade.pull(
                        ref, Arch.AMD64, device, caches[device], now_s=sim.now
                    )
                    account(result)
                    if result.seconds > 0:
                        yield sim.timeout(result.seconds)
                    # account() ran at pull start (analytic admission is
                    # instant); the makespan must cover the modelled
                    # sleep.
                    outcome.makespan_s = max(outcome.makespan_s, sim.now)
                    outcome.longest_pull_s = max(
                        outcome.longest_pull_s, sim.now - at_s
                    )
                else:
                    result = yield from facade.pull_process(
                        ref, Arch.AMD64, device, caches[device], engine
                    )
                    account(result)
                    outcome.longest_pull_s = max(
                        outcome.longest_pull_s, sim.now - at_s
                    )
            finally:
                busy[device] -= 1

        for at_s, device, ref in scenario.schedule:
            sim.process(one_pull(at_s, device, ref))

        if self.replicator is not None:
            sim.process(self.replicator.process())
            outcome.replicator = self.replicator
            sim.run(until=scenario.horizon_s)
            outcome.bytes_replicated = self.replicator.bytes_replicated
        else:
            sim.run(until=scenario.horizon_s)
        outcome.unfinished_pulls = (
            len(scenario.schedule) - outcome.pulls - outcome.skipped_pulls
        )
        if churn_process is not None:
            outcome.departures = churn_process.departures
            outcome.rejoins = churn_process.rejoins
        if engine is not None:
            outcome.engine_transfers_visited = engine.transfers_visited
        if self.discovery is not None:
            outcome.gossip_rounds = self.discovery.rounds
            outcome.gossip_records_sent = self.discovery.records_sent
            outcome.gossip_payloads_lost = self.discovery.payloads_lost
            # Replicator-side misses are metered on the backend, not on
            # any pull result; fold the total in so the outcome's
            # counter matches the swarm-wide one.
            outcome.stale_peer_misses = self.discovery.stale_misses
        if self.engine_profile is not None:
            outcome.engine_profile = self.engine_profile.summary()
        outcome.wall_build_s = self._wall_build_s
        outcome.wall_run_s = perf_counter() - t0
        return outcome
