"""Named scenario presets and the experiment registry.

Every historical experiment configuration is captured here as a named,
reproducible :class:`~repro.scenarios.spec.ScenarioSpec` —
``scenarios.get("p2p-gossip")`` hands back the exact single-session
spec the ``p2p-gossip`` experiment's headline row runs, ready for
``SimulationSession(spec).run()`` or dotted ``--set`` overrides.

Two registries live here:

* **presets** — name → spec factory (:func:`register`, :func:`get`,
  :func:`names`, :func:`entries`).  Factories return a *fresh* frozen
  spec each call, so callers can ``dataclasses.replace`` variants
  without aliasing.
* **experiments** — preset-family name → full experiment runner
  (:func:`attach_experiment`, :func:`experiment`,
  :func:`experiment_names`).  ``repro.experiments.p2p`` attaches its
  four ``run_*`` entry points at import time; the CLI derives its
  ``all`` target and its subcommand table from this registry, so a new
  scenario family can never be silently forgotten.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from .spec import (
    ChunkSpec,
    ChurnSpec,
    DiscoverySpec,
    ReplicationSpec,
    ScenarioSpec,
    TopologySpec,
    TransferSpec,
    WorkloadSpec,
)

SpecFactory = Callable[[], ScenarioSpec]


@dataclass(frozen=True)
class Preset:
    """One named scenario configuration."""

    name: str
    description: str
    family: str
    factory: SpecFactory


_PRESETS: Dict[str, Preset] = {}
_EXPERIMENTS: Dict[str, Callable[..., object]] = {}


def register(
    name: str,
    factory: SpecFactory,
    *,
    description: str = "",
    family: str = "",
) -> None:
    """Add a preset; re-registering a name is a programming error."""
    if name in _PRESETS:
        raise ValueError(f"preset {name!r} already registered")
    _PRESETS[name] = Preset(
        name=name,
        description=description,
        family=family or name,
        factory=factory,
    )


def get(name: str) -> ScenarioSpec:
    """A fresh :class:`ScenarioSpec` for preset ``name``."""
    if name not in _PRESETS:
        raise KeyError(
            f"unknown scenario preset {name!r}; known presets: "
            f"{', '.join(names())}"
        )
    return _PRESETS[name].factory()


def names() -> Tuple[str, ...]:
    """All registered preset names, sorted."""
    return tuple(sorted(_PRESETS))


def entries() -> Tuple[Preset, ...]:
    """All presets, sorted by name."""
    return tuple(_PRESETS[name] for name in names())


def attach_experiment(name: str, runner: Callable[..., object]) -> None:
    """Bind the full experiment runner for preset family ``name``.

    ``runner(seed=...)`` must return an
    :class:`~repro.experiments.runner.ExperimentResult`.  The preset of
    the same name must exist — an experiment without a representative
    single-session preset would be invisible to ``repro scenario``.
    """
    if name not in _PRESETS:
        raise ValueError(
            f"cannot attach an experiment to unknown preset {name!r}"
        )
    if name in _EXPERIMENTS:
        raise ValueError(f"experiment {name!r} already attached")
    _EXPERIMENTS[name] = runner


def experiment(name: str) -> Callable[..., object]:
    if name not in _EXPERIMENTS:
        raise KeyError(
            f"no experiment attached to {name!r}; attached: "
            f"{', '.join(experiment_names())}"
        )
    return _EXPERIMENTS[name]


def experiment_names() -> Tuple[str, ...]:
    """Preset families with a full experiment attached, sorted."""
    return tuple(sorted(_EXPERIMENTS))


# ----------------------------------------------------------------------
# the built-in presets: every historical experiment family
# ----------------------------------------------------------------------
def _standard_topology() -> TopologySpec:
    return TopologySpec(n_devices=12, n_regions=3, cache_gb=12.0)


def _contended_topology(n_devices: int = 8) -> TopologySpec:
    return TopologySpec(
        n_devices=n_devices,
        n_regions=2,
        cache_gb=12.0,
        device_nic_mbps=400.0,
        hub_egress_mbps=500.0,
        regional_egress_mbps=300.0,
    )


def _cold_waves(stagger_s: float = 1.0) -> WorkloadSpec:
    return WorkloadSpec(
        kind="cold-waves",
        n_images=2,
        pulls_per_device=1,
        stagger_s=stagger_s,
    )


register(
    "p2p",
    lambda: ScenarioSpec(
        mode="hybrid+p2p",
        topology=_standard_topology(),
        workload=WorkloadSpec(kind="zipf", n_images=6, pulls_per_device=4),
    ),
    description=(
        "layer-sharing Zipf workload, full three-tier stack "
        "(peers + adaptive replicator), analytic transfers"
    ),
    family="p2p",
)

register(
    "p2p-hybrid",
    lambda: ScenarioSpec(
        mode="hybrid",
        topology=_standard_topology(),
        workload=WorkloadSpec(kind="zipf", n_images=6, pulls_per_device=4),
    ),
    description=(
        "the paper's two-tier baseline (regional first, hub fallback) "
        "on the layer-sharing workload"
    ),
    family="p2p",
)

register(
    "p2p-hub-only",
    lambda: ScenarioSpec(
        mode="hub-only",
        topology=_standard_topology(),
        workload=WorkloadSpec(kind="zipf", n_images=6, pulls_per_device=4),
    ),
    description="every layer from Docker Hub on the layer-sharing workload",
    family="p2p",
)

register(
    "p2p-contended",
    lambda: ScenarioSpec(
        mode="hybrid+p2p",
        topology=_contended_topology(),
        workload=_cold_waves(),
        transfer=TransferSpec(
            model="time-resolved", upload_budget=2
        ),
    ),
    description=(
        "worst-case-overlap cold waves through the shared-bandwidth "
        "engine (upload budget 2)"
    ),
    family="p2p-contended",
)

register(
    "p2p-gossip",
    lambda: ScenarioSpec(
        mode="hybrid+p2p",
        topology=TopologySpec(n_devices=16, n_regions=3, cache_gb=12.0),
        workload=WorkloadSpec(kind="zipf", n_images=6, pulls_per_device=4),
        discovery=DiscoverySpec(
            backend="gossip",
            gossip_fanout=2,
            gossip_period_s=60.0,
        ),
        churn=ChurnSpec(
            mean_uptime_s=1500.0, mean_downtime_s=300.0, min_online=4
        ),
    ),
    description=(
        "gossip discovery (fanout 2, period 60 s) under moderate churn "
        "on the layer-sharing workload"
    ),
    family="p2p-gossip",
)

register(
    "p2p-chunked",
    lambda: ScenarioSpec(
        mode="hybrid+p2p",
        topology=_contended_topology(),
        workload=_cold_waves(),
        transfer=TransferSpec(model="time-resolved", upload_budget=2),
        chunks=ChunkSpec(enabled=True, size_bytes=16_000_000, parallel=4),
    ),
    description=(
        "chunked rarest-first multi-source pulls (16 MB chunks, window "
        "4) on the contended cold wave"
    ),
    family="p2p-chunked",
)

register(
    "p2p-swarm-100k",
    lambda: ScenarioSpec(
        mode="hybrid+p2p",
        # 5000 LAN islands of 20 devices.  Registry egress is sliced
        # into per-region trunk links instead of one monolithic uplink:
        # a shared uplink would couple every in-flight registry pull on
        # the planet into one connected component, while a trunk slice
        # keeps each region's closure regional — the topology the
        # sharded deadline index is built for.  The inter-region
        # gateway mesh is off because it is quadratic in regions
        # (5000 regions would mean ~25M WAN channels); inter-region
        # traffic rides the trunks.
        topology=TopologySpec(
            n_devices=100_000,
            n_regions=5000,
            cache_gb=12.0,
            device_nic_mbps=400.0,
            hub_trunk_mbps=50.0,
            regional_trunk_mbps=200.0,
            inter_region_mesh=False,
        ),
        workload=_cold_waves(stagger_s=0.01),
        transfer=TransferSpec(
            model="time-resolved",
            upload_budget=4,
            recompute="sharded",
        ),
        # One replication sweep scans every tracked digest x region;
        # at 100k devices even the 600 s swarm-scale cadence would
        # dominate the run, so sweep once per wave gap.
        replication=ReplicationSpec(interval_s=1800.0),
    ),
    description=(
        "100k-device cold waves over 5000 trunk-sliced regions through "
        "the region-sharded engine — the interactive-scale benchmark "
        "scenario"
    ),
    family="p2p-swarm-scale",
)

register(
    "p2p-swarm-scale",
    lambda: ScenarioSpec(
        mode="hybrid+p2p",
        # NIC-shaped endpoints but no hub/regional egress shaping: a
        # shared registry uplink would couple every in-flight pull into
        # one connected component, defeating the closure-local
        # recompute this preset exists to exercise (registry fan-out is
        # the CDN's problem, per the engine's budget model).
        topology=TopologySpec(
            n_devices=1000,
            n_regions=20,
            cache_gb=12.0,
            device_nic_mbps=400.0,
        ),
        workload=_cold_waves(stagger_s=0.25),
        transfer=TransferSpec(
            model="time-resolved",
            upload_budget=4,
            recompute="incremental",
        ),
        # Replication sweeps scan every tracked digest × region; at
        # swarm scale a 2-minute cadence would spend more wall time on
        # sweeps than on the waves themselves.
        replication=ReplicationSpec(interval_s=600.0),
    ),
    description=(
        "1000-device cold waves through the incremental fair-share "
        "engine (upload budget 4) — the swarm-scale benchmark scenario"
    ),
    family="p2p-swarm-scale",
)
