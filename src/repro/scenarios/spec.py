"""Typed, validated, serializable scenario specifications.

Four PRs of registry-tier growth left every experiment re-wiring the
same sixteen knobs by hand at each ``run_mode`` call site.  This module
replaces that call-site wiring with small frozen dataclasses — one per
concern — composed into a :class:`ScenarioSpec`:

* :class:`TopologySpec`    — swarm size, regions, caches, NIC shaping
* :class:`WorkloadSpec`    — what gets pulled, when (zipf / cold waves)
* :class:`TransferSpec`    — analytic vs time-resolved, upload budgets
* :class:`DiscoverySpec`   — omniscient vs gossip (fanout/period/cap)
* :class:`ChurnSpec`       — stochastic membership (uptime/downtime)
* :class:`ReplicationSpec` — the adaptive replicator's knobs
* :class:`ChunkSpec`       — chunked multi-source pulls
* :class:`TelemetrySpec`   — opt-in traces / metrics / profiling

Every cross-field rule that used to live (or hide) inside ``run_mode``
is enforced at *construction* time — an invalid combination can never
reach the simulator:

* chunked pulls require the time-resolved transfer model,
* an upload budget is only meaningful with the time-resolved model,
* gossip knobs are only accepted with the gossip backend,
* a churn-aware replicator requires a churn process,
* cold-wave workloads pull exactly once per device per wave.

Specs round-trip losslessly through :meth:`ScenarioSpec.to_dict` /
:meth:`ScenarioSpec.from_dict` (plain JSON-safe dicts), so sweeps,
benchmarks, and the CLI's ``--set dotted.path=value`` overrides (see
:func:`with_overrides`) are all data-driven.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..registry.chunks import DEFAULT_CHUNK_SIZE_BYTES
from ..util import did_you_mean
from ..sim.churn import ChurnConfig
from ..sim.rng import DEFAULT_SEED
from ..sim.transfers import TransferModel

#: The registry-chain configurations a scenario can run under.
MODES = ("hub-only", "hybrid", "hybrid+p2p")

#: The replica-lookup backends a scenario can use.
DISCOVERY_BACKENDS = ("omniscient", "gossip")

#: The pull-schedule shapes a workload can take.
WORKLOAD_KINDS = ("zipf", "cold-waves")


def _require_positive(name: str, value: float) -> None:
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")


@dataclass(frozen=True)
class TopologySpec:
    """The physical swarm: devices, regions, caches, and NIC shaping.

    The optional ``*_mbps`` knobs add shared endpoint links (the
    contended-overlap scenarios use them): ``device_nic_mbps`` gives
    every device a shared uplink *and* downlink of that capacity,
    ``hub_egress_mbps`` / ``regional_egress_mbps`` cap the registries'
    shared egress.  ``None`` (the default) leaves endpoints unshaped,
    matching the original layer-sharing scenario.

    ``hub_trunk_mbps`` / ``regional_trunk_mbps`` instead give each
    registry a **per-region egress slice** of that capacity — pulls
    toward different regions ride separate trunk links owned by the
    destination region's shard, so registry traffic never couples
    regions into one fairness component.  A trunk knob excludes the
    monolithic egress knob for the same registry tier (they describe
    the same wire).  ``inter_region_mesh=False`` drops the
    gateway-to-gateway WAN mesh (quadratic in region count — required
    off at the 100k scale); cross-region peer pulls then fall back to
    the registry tiers.
    """

    n_devices: int = 12
    n_regions: int = 3
    cache_gb: float = 12.0
    device_nic_mbps: Optional[float] = None
    hub_egress_mbps: Optional[float] = None
    regional_egress_mbps: Optional[float] = None
    hub_trunk_mbps: Optional[float] = None
    regional_trunk_mbps: Optional[float] = None
    inter_region_mesh: bool = True

    def __post_init__(self) -> None:
        if self.n_devices < 2:
            raise ValueError("a swarm needs at least 2 devices")
        if self.n_regions < 1:
            raise ValueError(f"n_regions must be >= 1, got {self.n_regions}")
        _require_positive("cache_gb", self.cache_gb)
        for name in ("device_nic_mbps", "hub_egress_mbps",
                     "regional_egress_mbps", "hub_trunk_mbps",
                     "regional_trunk_mbps"):
            value = getattr(self, name)
            if value is not None:
                _require_positive(name, value)
        if self.hub_trunk_mbps is not None and self.hub_egress_mbps is not None:
            raise ValueError(
                "hub_trunk_mbps and hub_egress_mbps both shape hub egress; "
                "set one (per-region trunk slices or one monolithic link)"
            )
        if (
            self.regional_trunk_mbps is not None
            and self.regional_egress_mbps is not None
        ):
            raise ValueError(
                "regional_trunk_mbps and regional_egress_mbps both shape "
                "regional-registry egress; set one"
            )


@dataclass(frozen=True)
class WorkloadSpec:
    """What the swarm pulls, and when.

    ``kind="zipf"`` is the layer-sharing workload: Zipf-skewed demand
    over the image catalogue with exponential arrivals,
    ``pulls_per_device`` pulls each.  ``kind="cold-waves"`` is the
    contended-overlap workload: every device pulls the *same* image
    nearly simultaneously (``stagger_s`` apart), then a sibling image
    (shared base) one half-horizon later — one pull per device per
    wave, so ``pulls_per_device`` must be 1 and ``stagger_s`` is
    required (and meaningless for zipf).
    """

    kind: str = "zipf"
    n_images: int = 6
    pulls_per_device: int = 4
    horizon_s: float = 3600.0
    stagger_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in WORKLOAD_KINDS:
            raise ValueError(
                f"unknown workload kind {self.kind!r}; expected one of "
                f"{WORKLOAD_KINDS}"
            )
        if self.n_images < 1:
            raise ValueError(f"n_images must be >= 1, got {self.n_images}")
        if self.pulls_per_device < 1:
            raise ValueError(
                f"pulls_per_device must be >= 1, got {self.pulls_per_device}"
            )
        _require_positive("horizon_s", self.horizon_s)
        if self.kind == "cold-waves":
            if self.n_images < 2:
                raise ValueError(
                    "cold-waves needs n_images >= 2 (the second wave pulls "
                    "a sibling image)"
                )
            if self.pulls_per_device != 1:
                raise ValueError(
                    "cold-waves schedules exactly one pull per device per "
                    f"wave; set pulls_per_device=1 "
                    f"(got {self.pulls_per_device})"
                )
            stagger_s = self.stagger_s if self.stagger_s is not None else 1.0
            object.__setattr__(self, "stagger_s", stagger_s)
            _require_positive("stagger_s", stagger_s)
        elif self.stagger_s is not None:
            raise ValueError(
                "stagger_s only applies to the cold-waves workload "
                f"(kind={self.kind!r})"
            )


#: Fair-share recompute strategies of the time-resolved engine.
#: ``"full"`` re-solves every active transfer per event (the
#: historically pinned default); ``"incremental"`` re-solves only the
#: dirty closure the event perturbed — identical rates, swarm-scale
#: event cost.  ``"sharded"`` adds region-sharded deadline-index
#: maintenance on top of the incremental mode — still bit-identical,
#: and index upkeep scales with the busy region instead of the swarm.
RECOMPUTE_MODES = ("full", "incremental", "sharded")


@dataclass(frozen=True)
class TransferSpec:
    """How bytes become elapsed time.

    ``model="analytic"`` keeps the paper's instant-admission
    accounting; ``"time-resolved"`` drives every pull through the
    shared-bandwidth :class:`~repro.sim.transfers.TransferEngine`.
    ``upload_budget`` caps concurrent uploads per device and is only
    meaningful (and only accepted) with the time-resolved model — the
    analytic model has no engine to enforce it.  ``recompute`` selects
    the engine's fair-share recompute strategy (see
    :data:`RECOMPUTE_MODES`) and likewise needs the engine.
    """

    model: TransferModel = TransferModel.ANALYTIC
    upload_budget: Optional[int] = None
    recompute: str = "full"

    def __post_init__(self) -> None:
        if not isinstance(self.model, TransferModel):
            object.__setattr__(
                self, "model", _parse_transfer_model(self.model)
            )
        if self.upload_budget is not None:
            if self.upload_budget < 1:
                raise ValueError(
                    f"upload_budget must be >= 1, got {self.upload_budget}"
                )
            if self.model is not TransferModel.TIME_RESOLVED:
                raise ValueError(
                    "upload_budget needs the time-resolved transfer model "
                    "(the analytic model has no engine to enforce it)"
                )
        if self.recompute not in RECOMPUTE_MODES:
            raise ValueError(
                f"unknown recompute mode {self.recompute!r}; expected one "
                f"of {RECOMPUTE_MODES}"
            )
        if (
            self.recompute != "full"
            and self.model is not TransferModel.TIME_RESOLVED
        ):
            raise ValueError(
                "recompute selection needs the time-resolved transfer "
                "model (the analytic model never recomputes rates)"
            )

    @property
    def time_resolved(self) -> bool:
        return self.model is TransferModel.TIME_RESOLVED


def _parse_transfer_model(value: Any) -> TransferModel:
    """Accept enum members, ``"time-resolved"``, and ``"time_resolved"``."""
    if isinstance(value, TransferModel):
        return value
    try:
        return TransferModel(str(value).replace("_", "-"))
    except ValueError:
        raise ValueError(
            f"unknown transfer model {value!r}; expected one of "
            f"{tuple(m.value for m in TransferModel)}"
        ) from None


#: How gossip partners exchange knowledge. ``"push-pull"`` ships the
#: full payload both ways (the historical default); ``"digest-summary"``
#: first compares version summaries and ships only the records the
#: partner actually lacks — identical convergence, far fewer records on
#: the wire (metered as ``gossip_records_sent``).
GOSSIP_EXCHANGES = ("push-pull", "digest-summary")

#: The gossip knobs and the default each takes under backend="gossip".
_GOSSIP_KNOB_DEFAULTS = {
    "gossip_fanout": 2,
    "gossip_period_s": 60.0,
    "gossip_view_cap": 8,
    "gossip_latency_s": 0.0,
    "gossip_exchange": "push-pull",
    "gossip_loss_rate": 0.0,
}


@dataclass(frozen=True)
class DiscoverySpec:
    """How devices learn which peers hold which layers.

    The gossip knobs (``gossip_fanout`` / ``gossip_period_s`` /
    ``gossip_view_cap`` / ``gossip_latency_s`` / ``gossip_exchange``)
    are only accepted with ``backend="gossip"``; under gossip, unset
    knobs are normalised to the historical defaults (fanout 2, period
    60 s, view cap 8, zero latency, full push-pull payloads) so equal
    configurations compare equal after round-tripping.
    ``gossip_latency_s`` models per-pair metadata delivery latency:
    exchanged knowledge lands that many simulated seconds after the
    round fires, so views lag reality by a period *plus* the transport.
    ``gossip_loss_rate`` drops each directed payload independently
    with that probability (seeded, metered as ``payloads_lost``) —
    anti-entropy still converges, just over more rounds.
    """

    backend: str = "omniscient"
    gossip_fanout: Optional[int] = None
    gossip_period_s: Optional[float] = None
    gossip_view_cap: Optional[int] = None
    gossip_latency_s: Optional[float] = None
    gossip_exchange: Optional[str] = None
    gossip_loss_rate: Optional[float] = None

    def __post_init__(self) -> None:
        if self.backend not in DISCOVERY_BACKENDS:
            raise ValueError(
                f"unknown discovery {self.backend!r}; expected one of "
                f"{DISCOVERY_BACKENDS}"
            )
        if self.backend == "gossip":
            for name, default in _GOSSIP_KNOB_DEFAULTS.items():
                if getattr(self, name) is None:
                    object.__setattr__(self, name, default)
            # The defaulting loop above runs through object.__setattr__,
            # which no type-checker can see through — re-read the knobs
            # into locals and narrow them once.
            fanout = self.gossip_fanout
            period_s = self.gossip_period_s
            view_cap = self.gossip_view_cap
            latency_s = self.gossip_latency_s
            exchange = self.gossip_exchange
            loss_rate = self.gossip_loss_rate
            assert (
                fanout is not None
                and period_s is not None
                and view_cap is not None
                and latency_s is not None
                and exchange is not None
                and loss_rate is not None
            )
            if fanout < 1:
                raise ValueError(
                    f"gossip_fanout must be >= 1, got {fanout}"
                )
            _require_positive("gossip_period_s", period_s)
            if view_cap < 1:
                raise ValueError(
                    f"gossip_view_cap must be >= 1, got {view_cap}"
                )
            if latency_s < 0:
                raise ValueError(
                    f"gossip_latency_s must be >= 0, got "
                    f"{latency_s}"
                )
            if exchange not in GOSSIP_EXCHANGES:
                raise ValueError(
                    f"unknown gossip_exchange {exchange!r}; "
                    f"expected one of {GOSSIP_EXCHANGES}"
                )
            if not 0.0 <= loss_rate < 1.0:
                raise ValueError(
                    f"gossip_loss_rate must be in [0, 1), got "
                    f"{loss_rate}"
                )
        else:
            set_knobs = [
                name
                for name in _GOSSIP_KNOB_DEFAULTS
                if getattr(self, name) is not None
            ]
            if set_knobs:
                raise ValueError(
                    f"{set_knobs} only apply to the gossip discovery "
                    f"backend (backend={self.backend!r})"
                )


@dataclass(frozen=True)
class ChurnSpec:
    """Stochastic membership: seeded exponential online/offline cycling.

    Mirrors :class:`~repro.sim.churn.ChurnConfig` (and validates by
    constructing one), so a spec'd regime is exactly a runnable one.
    """

    mean_uptime_s: float = 600.0
    mean_downtime_s: float = 120.0
    min_online: int = 2

    def __post_init__(self) -> None:
        self.to_config()  # ChurnConfig carries the validation

    def to_config(self) -> ChurnConfig:
        return ChurnConfig(
            mean_uptime_s=self.mean_uptime_s,
            mean_downtime_s=self.mean_downtime_s,
            min_online=self.min_online,
        )

    @classmethod
    def from_config(cls, config: ChurnConfig) -> "ChurnSpec":
        return cls(
            mean_uptime_s=config.mean_uptime_s,
            mean_downtime_s=config.mean_downtime_s,
            min_online=config.min_online,
        )


#: Where replication demand is judged hot.  ``"global"`` (the pinned
#: historical policy) declares a digest hot on its *swarm-wide* decayed
#: score and then tops every region up; ``"per-region"`` requires each
#: region's own score to clear the threshold before that region
#: receives a proactive copy.
HOTNESS_SCOPES = ("global", "per-region")


@dataclass(frozen=True)
class ReplicationSpec:
    """The adaptive replicator's knobs (hybrid+p2p mode only).

    ``decay`` is the per-cycle exponential decay of demand scores
    (0 forgets everything each cycle, values near 1 remember demand
    almost indefinitely); ``hotness`` selects the scope demand is
    judged at (see :data:`HOTNESS_SCOPES`).  ``churn_aware=True`` hands
    the scenario's churn process to the replicator so replica targets
    weight holders by observed session lengths — it therefore requires
    the scenario to define churn (enforced by :class:`ScenarioSpec`).

    ``hot_fraction`` (per-region hotness only) auto-scales the hot
    threshold to each cycle's demand: a ``(digest, region)`` pair is
    hot when its decayed score reaches that fraction of the cycle's
    peak per-region score, instead of clearing the absolute
    ``hot_threshold``.  Per-region scores shrink with region size, so
    an absolute threshold tuned for one topology silently goes deaf on
    another — the fraction is scale-free.
    """

    interval_s: float = 120.0
    hot_threshold: float = 3.0
    target_replicas: int = 2
    decay: float = 0.5
    hotness: str = "global"
    churn_aware: bool = False
    hot_fraction: Optional[float] = None

    def __post_init__(self) -> None:
        _require_positive("interval_s", self.interval_s)
        _require_positive("hot_threshold", self.hot_threshold)
        if self.target_replicas < 1:
            raise ValueError(
                f"target_replicas must be >= 1, got {self.target_replicas}"
            )
        if not 0.0 <= self.decay < 1.0:
            raise ValueError(
                f"decay must be in [0, 1), got {self.decay}"
            )
        if self.hotness not in HOTNESS_SCOPES:
            raise ValueError(
                f"unknown hotness scope {self.hotness!r}; expected one of "
                f"{HOTNESS_SCOPES}"
            )
        if self.hot_fraction is not None:
            if not 0.0 < self.hot_fraction <= 1.0:
                raise ValueError(
                    f"hot_fraction must be in (0, 1], got {self.hot_fraction}"
                )
            if self.hotness != "per-region":
                raise ValueError(
                    "hot_fraction scales the per-region hot threshold; it "
                    f"needs hotness='per-region' (got {self.hotness!r})"
                )


@dataclass(frozen=True)
class ChunkSpec:
    """Chunked multi-source pulls (BitTorrent-style swarm scheduling).

    ``enabled=True`` requires the time-resolved transfer model — the
    analytic model has no notion of a partially transferred layer
    (enforced by :class:`ScenarioSpec`).
    """

    enabled: bool = False
    size_bytes: int = DEFAULT_CHUNK_SIZE_BYTES
    parallel: int = 4

    def __post_init__(self) -> None:
        _require_positive("size_bytes", self.size_bytes)
        if self.parallel < 1:
            raise ValueError(f"parallel must be >= 1, got {self.parallel}")


@dataclass(frozen=True)
class TelemetrySpec:
    """Opt-in observability (see :mod:`repro.telemetry`).

    ``trace`` streams structured sim-time events (transfer lifecycle,
    fair-share reallocations, gossip rounds, churn transitions,
    replicator cycles, chunk endgame) into a
    :class:`~repro.telemetry.TraceRecorder`; ``metrics_period_s``
    schedules a tidy-row :class:`~repro.telemetry.MetricsSampler` at
    that simulated period (``None`` = no sampler, and nothing extra
    ever enters the event queue); ``profile`` attaches an
    :class:`~repro.telemetry.EngineProfile` to the transfer engine.

    Everything defaults off, and the whole section is **omitted** from
    :meth:`ScenarioSpec.to_dict` while it equals the default — so every
    historical spec dict, cache key, and sweep-cell content address is
    preserved bit-for-bit.  Telemetry is observation-only either way:
    enabling it changes no outcome (the differential tests pin this).
    """

    trace: bool = False
    metrics_period_s: Optional[float] = None
    profile: bool = False

    def __post_init__(self) -> None:
        if self.metrics_period_s is not None:
            _require_positive("metrics_period_s", self.metrics_period_s)

    @property
    def enabled(self) -> bool:
        """Whether any sink is requested."""
        return self.trace or self.profile or self.metrics_period_s is not None


#: Sub-spec classes by ScenarioSpec field name, shared by the generic
#: (de)serialisation below.
_SECTIONS: Dict[str, type] = {
    "topology": TopologySpec,
    "workload": WorkloadSpec,
    "transfer": TransferSpec,
    "discovery": DiscoverySpec,
    "churn": ChurnSpec,
    "replication": ReplicationSpec,
    "chunks": ChunkSpec,
    "telemetry": TelemetrySpec,
}


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully described simulation run.

    Composes the concern specs with the registry-chain ``mode`` and
    the root ``seed``.  All cross-section rules are enforced here,
    at construction, so an invalid combination raises immediately —
    never mid-run:

    * ``chunks.enabled`` requires ``transfer.model == TIME_RESOLVED``,
    * ``replication.churn_aware`` requires a ``churn`` section.

    Use :func:`dataclasses.replace` to derive variants (``replace(spec,
    mode="hybrid")``), :func:`with_overrides` for dotted-path string
    overrides, and :meth:`to_dict` / :meth:`from_dict` to serialise.
    """

    mode: str = "hybrid+p2p"
    topology: TopologySpec = field(default_factory=TopologySpec)
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    transfer: TransferSpec = field(default_factory=TransferSpec)
    discovery: DiscoverySpec = field(default_factory=DiscoverySpec)
    churn: Optional[ChurnSpec] = None
    replication: ReplicationSpec = field(default_factory=ReplicationSpec)
    chunks: ChunkSpec = field(default_factory=ChunkSpec)
    telemetry: TelemetrySpec = field(default_factory=TelemetrySpec)
    seed: int = DEFAULT_SEED

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(
                f"unknown mode {self.mode!r}; expected one of {MODES}"
            )
        if self.seed < 0:
            raise ValueError(f"seed must be >= 0, got {self.seed}")
        if self.chunks.enabled and not self.transfer.time_resolved:
            raise ValueError(
                "chunked pulls need TransferModel.TIME_RESOLVED (the "
                "analytic model has no notion of a partially transferred "
                "layer)"
            )
        if self.replication.churn_aware and self.churn is None:
            raise ValueError(
                "replication.churn_aware needs a churn section — there is "
                "no churn process to learn session lengths from"
            )

    # -- serialisation -------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A plain, JSON-safe dict that :meth:`from_dict` inverts."""
        data: Dict[str, Any] = {"mode": self.mode, "seed": self.seed}
        for name in _SECTIONS:
            section = getattr(self, name)
            if name == "telemetry" and section == TelemetrySpec():
                # A fully-default telemetry section is omitted, so every
                # pre-telemetry spec dict — and therefore every cache
                # key and sweep-cell content address — survives
                # bit-for-bit.  Non-default telemetry perturbs the key
                # like any other section (a traced run is a different
                # cell: its outcome dict differs).
                continue
            data[name] = None if section is None else _section_to_dict(section)
        return data

    def cache_key(self) -> str:
        """A canonical content address of this exact scenario.

        The SHA-256 of the spec's :meth:`to_dict` form (seed included)
        serialised canonically — key order never matters, so two specs
        that compare equal hash equal however their dicts were built,
        and any field change (any section, the mode, or the seed)
        perturbs the key.  This is the cell identity the sweep runner's
        on-disk results cache is addressed by.
        """
        return canonical_hash(self.to_dict())

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output.

        Missing keys take their defaults (so hand-written partial dicts
        work); unknown keys raise — a typo'd knob must never be
        silently ignored.
        """
        unknown = set(data) - set(_SECTIONS) - {"mode", "seed"}
        if unknown:
            raise ValueError(f"unknown ScenarioSpec keys {sorted(unknown)}")
        kwargs: Dict[str, Any] = {}
        for key in ("mode", "seed"):
            if key in data:
                kwargs[key] = data[key]
        for name, section_cls in _SECTIONS.items():
            if name not in data:
                continue
            section = data[name]
            if section is None:
                if name != "churn":
                    raise ValueError(f"section {name!r} cannot be null")
                kwargs[name] = None
            else:
                kwargs[name] = _section_from_dict(section_cls, section)
        return cls(**kwargs)


def canonical_json(data: Any) -> str:
    """The canonical serialisation content hashes are computed over.

    Keys are sorted recursively and separators are fixed, so any two
    structurally equal JSON-safe values — however their mappings were
    ordered — serialise to the same bytes.
    """
    return json.dumps(
        data, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


def canonical_hash(data: Any) -> str:
    """Key-order-insensitive SHA-256 hex digest of a JSON-safe value."""
    return hashlib.sha256(canonical_json(data).encode("ascii")).hexdigest()


def _section_to_dict(section: Any) -> Dict[str, Any]:
    data: Dict[str, Any] = {}
    for f in fields(section):
        value = getattr(section, f.name)
        data[f.name] = value.value if isinstance(value, TransferModel) else value
    return data


def _section_from_dict(section_cls: type, data: Mapping[str, Any]) -> Any:
    if not isinstance(data, Mapping):
        raise ValueError(
            f"{section_cls.__name__} section must be a mapping, "
            f"got {type(data).__name__}"
        )
    known = {f.name for f in fields(section_cls)}
    unknown = set(data) - known
    if unknown:
        raise ValueError(
            f"unknown {section_cls.__name__} keys {sorted(unknown)}"
        )
    # String transfer models parse inside TransferSpec.__post_init__,
    # so the deserializer stays fully generic.
    return section_cls(**data)


# ----------------------------------------------------------------------
# dotted-path overrides (the CLI's --set flag)
# ----------------------------------------------------------------------
def _parse_override_value(raw: str) -> Any:
    """``"600"`` → 600, ``"true"`` → True, ``"none"`` → None, else str."""
    lowered = raw.strip().lower()
    if lowered in ("none", "null"):
        return None
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    try:
        return json.loads(raw)
    except (ValueError, TypeError):
        return raw


def _all_override_paths() -> List[str]:
    """Every assignable dotted path (for nearest-match suggestions)."""
    paths = ["mode", "seed", "churn"]
    for section, section_cls in _SECTIONS.items():
        paths.extend(f"{section}.{f.name}" for f in fields(section_cls))
    return paths


#: Nearest-match suggestion suffix (shared with the lint CLI's unknown
#: rule-name diagnostics — see :mod:`repro.util`).
_nearest = did_you_mean


def with_overrides(
    spec: ScenarioSpec, assignments: Mapping[str, Any]
) -> ScenarioSpec:
    """``spec`` with dotted-path overrides applied and re-validated.

    Keys are ``section.field`` (or bare ``mode`` / ``seed`` /
    ``churn``); string values are parsed as JSON scalars where possible
    (``"none"``/``"null"`` clear, e.g. ``churn=none`` drops churn).
    Setting any ``churn.*`` field on a churn-less spec creates a
    default :class:`ChurnSpec` first.  The result passes through
    :meth:`ScenarioSpec.from_dict`, so every cross-field rule still
    applies — an override can never smuggle in an invalid combination.

    Bad paths are collected and reported *together* in one
    :class:`ValueError` — a sweep axis with three typos names all three
    (each with its nearest valid path) instead of failing one fix at a
    time.
    """
    data = spec.to_dict()
    problems: List[str] = []
    for path, raw in assignments.items():
        value = _parse_override_value(raw) if isinstance(raw, str) else raw
        parts = path.split(".")
        if len(parts) == 1:
            key = parts[0]
            if key not in data:
                problems.append(
                    f"unknown override path {path!r}"
                    f"{_nearest(path, _all_override_paths())}"
                )
                continue
            if key in _SECTIONS and value is not None:
                problems.append(
                    f"section {key!r} can only be cleared (=none); set its "
                    f"fields via {key}.<field>=<value>"
                )
                continue
            data[key] = value
        elif len(parts) == 2:
            section, fname = parts
            if section not in _SECTIONS:
                problems.append(
                    f"unknown override section {section!r}"
                    f"{_nearest(path, _all_override_paths())}"
                )
                continue
            section_fields = [f.name for f in fields(_SECTIONS[section])]
            if fname not in section_fields:
                candidates = [f"{section}.{name}" for name in section_fields]
                problems.append(
                    f"unknown field {fname!r} of section {section!r}"
                    f"{_nearest(path, candidates + _all_override_paths())}"
                )
                continue
            # data.get, not data[...]: a fully-default telemetry
            # section is omitted from to_dict entirely.
            if data.get(section) is None:
                data[section] = {}
            data[section][fname] = value
        else:
            problems.append(
                f"override path {path!r} nests too deep; expected "
                f"section.field"
            )
    if problems:
        noun = "override" if len(problems) == 1 else "overrides"
        raise ValueError(
            f"{len(problems)} bad {noun}: " + "; ".join(problems)
        )
    return ScenarioSpec.from_dict(data)


def parse_set_flags(flags: Tuple[str, ...]) -> Dict[str, str]:
    """Split CLI ``--set path=value`` strings into an override mapping."""
    assignments: Dict[str, str] = {}
    for flag in flags:
        path, eq, value = flag.partition("=")
        if not eq or not path:
            raise ValueError(
                f"bad --set {flag!r}; expected section.field=value"
            )
        assignments[path.strip()] = value
    return assignments
