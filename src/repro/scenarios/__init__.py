"""Declarative scenario specs and the simulation session facade.

The public face of the swarm stack: describe a run as a frozen,
validated, serializable :class:`ScenarioSpec`, hand it to
:class:`SimulationSession`, and read the :class:`ModeOutcome`::

    from repro import scenarios

    spec = scenarios.get("p2p-gossip")              # a named preset
    spec = scenarios.with_overrides(spec, {"churn.mean_uptime_s": 600})
    outcome = scenarios.SimulationSession(spec).run()
    print(outcome.to_dict())

See ``src/repro/scenarios/README.md`` for spec anatomy, the preset
list, and override examples.
"""

from .build import SwarmDevice, SwarmScenario, build_swarm_scenario
from .presets import (
    Preset,
    attach_experiment,
    entries,
    experiment,
    experiment_names,
    get,
    names,
    register,
)
from .session import (
    NONDETERMINISTIC_OUTCOME_KEYS,
    ModeOutcome,
    SimulationSession,
    deterministic_outcome_dict,
)
from .spec import (
    DISCOVERY_BACKENDS,
    GOSSIP_EXCHANGES,
    HOTNESS_SCOPES,
    MODES,
    WORKLOAD_KINDS,
    ChunkSpec,
    ChurnSpec,
    DiscoverySpec,
    ReplicationSpec,
    ScenarioSpec,
    TelemetrySpec,
    TopologySpec,
    TransferSpec,
    WorkloadSpec,
    canonical_hash,
    canonical_json,
    parse_set_flags,
    with_overrides,
)

__all__ = [
    "DISCOVERY_BACKENDS",
    "GOSSIP_EXCHANGES",
    "HOTNESS_SCOPES",
    "MODES",
    "WORKLOAD_KINDS",
    "ChunkSpec",
    "ChurnSpec",
    "DiscoverySpec",
    "ModeOutcome",
    "NONDETERMINISTIC_OUTCOME_KEYS",
    "Preset",
    "ReplicationSpec",
    "ScenarioSpec",
    "SimulationSession",
    "SwarmDevice",
    "SwarmScenario",
    "TelemetrySpec",
    "TopologySpec",
    "TransferSpec",
    "WorkloadSpec",
    "attach_experiment",
    "build_swarm_scenario",
    "canonical_hash",
    "canonical_json",
    "deterministic_outcome_dict",
    "entries",
    "experiment",
    "experiment_names",
    "get",
    "names",
    "parse_set_flags",
    "register",
    "with_overrides",
]
