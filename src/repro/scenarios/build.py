"""Materialise a :class:`ScenarioSpec` into a runnable swarm scenario.

The builder is a faithful port of the original
``experiments.p2p.build_scenario`` / ``build_contended_scenario`` pair,
driven by :class:`~repro.scenarios.spec.TopologySpec` and
:class:`~repro.scenarios.spec.WorkloadSpec` instead of positional
keywords — RNG stream names, draw order, and network construction are
bit-for-bit identical, which is what keeps the historical experiment
outputs pinned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..model.network import NetworkModel
from ..registry.base import ImageReference, mirror_image
from ..registry.hub import DockerHub
from ..registry.images import OFFICIAL_BASES, build_image
from ..registry.minio import MinioStore
from ..registry.regional import RegionalRegistry
from ..sim.rng import RngRegistry
from .spec import ScenarioSpec

#: Image sizes cycled over the synthetic catalogue (GB, compressed).
_IMAGE_SIZES_GB = (0.35, 0.6, 0.9, 1.2)

#: Bases cycled over the catalogue: shared layers across images are
#: what the peer tier (and layer dedup generally) exploits.
_IMAGE_BASES = ("python:3.9-slim", "alpine:3", "python:3.9")


@dataclass(frozen=True)
class SwarmDevice:
    """One edge device of the synthetic swarm."""

    name: str
    region: str
    cache_gb: float


@dataclass
class SwarmScenario:
    """A fully wired pull workload over a swarm of edge devices."""

    devices: List[SwarmDevice]
    network: NetworkModel
    hub: DockerHub
    regional: RegionalRegistry
    references: List[ImageReference]
    #: (arrival time, device name, reference) — sorted by time.
    schedule: List[Tuple[float, str, ImageReference]]
    horizon_s: float
    seed: int


def build_swarm_scenario(spec: ScenarioSpec) -> SwarmScenario:
    """The scenario described by ``spec.topology`` / ``spec.workload``.

    Regions are LAN islands (full mesh at LAN bandwidth); every device
    reaches the hub (CDN bandwidth varies by region) and the regional
    registry (fast only for its home region).  The ``zipf`` workload
    draws Zipf-skewed demand over the image catalogue with exponential
    arrivals; ``cold-waves`` schedules two near-simultaneous waves of
    the same image (then its sibling) across every device.
    """
    topo, work = spec.topology, spec.workload
    rng = RngRegistry(spec.seed)

    # --- registries and the shared-base image catalogue ---------------
    hub = DockerHub(name="docker-hub")
    regional = RegionalRegistry(
        name="regional", store=MinioStore(capacity_gb=200.0)
    )
    references: List[ImageReference] = []
    for i in range(work.n_images):
        repo = f"swarm/app{i}"
        size_gb = _IMAGE_SIZES_GB[i % len(_IMAGE_SIZES_GB)]
        base = OFFICIAL_BASES[_IMAGE_BASES[i % len(_IMAGE_BASES)]]
        mlist, blobs = build_image(repo, size_gb, base=base)
        hub.push_image(repo, "latest", mlist, blobs)
        mirror_image(hub, regional, repo, "latest")
        references.append(ImageReference(repo))

    # --- devices, regions, and channels -------------------------------
    devices = [
        SwarmDevice(
            name=f"edge-{i:04d}",
            region=f"region-{i % topo.n_regions}",
            cache_gb=topo.cache_gb,
        )
        for i in range(topo.n_devices)
    ]
    network = NetworkModel()
    by_region: Dict[str, List[str]] = {}
    for dev in devices:
        by_region.setdefault(dev.region, []).append(dev.name)
        network.set_region(dev.name, dev.region)
    ordered_regions = sorted(by_region.items())
    for r, (region, members) in enumerate(ordered_regions):
        if len(members) > 1:
            network.connect_device_mesh(members, 800.0, rtt_s=0.02)
        hub_bw = (60.0, 40.0, 25.0)[r % 3]
        regional_bw = 150.0 if r == 0 else 90.0
        for name in members:
            network.connect_registry(hub.name, name, hub_bw, rtt_s=2.5)
            network.connect_registry(regional.name, name, regional_bw, rtt_s=0.8)
    # Inter-region WAN links between region gateways (the first member
    # of each region): slower than the LAN but they make cross-region
    # peer serving and proactive replication physically possible — a
    # region no holder can reach cannot be provisioned peer-to-peer.
    # The mesh is quadratic in region count; `inter_region_mesh=False`
    # drops it (the 100k-scale presets must — 4000 regions would mean
    # ~8M WAN channels) and leaves cross-region traffic to the
    # registry tiers.
    if topo.inter_region_mesh:
        gateways = [members[0] for _, members in ordered_regions]
        for i, a in enumerate(gateways):
            for b in gateways[i + 1:]:
                network.connect_devices(a, b, 200.0, rtt_s=0.05)

    # --- endpoint shaping (contended scenarios) ------------------------
    if topo.device_nic_mbps is not None:
        for dev in devices:
            network.set_uplink(dev.name, topo.device_nic_mbps)
            network.set_downlink(dev.name, topo.device_nic_mbps)
    if topo.hub_egress_mbps is not None:
        network.set_uplink(hub.name, topo.hub_egress_mbps)
    if topo.regional_egress_mbps is not None:
        network.set_uplink(regional.name, topo.regional_egress_mbps)
    # Per-region trunk slices: each region pulls from the registries
    # over its own egress link (owned by that region's shard) instead
    # of one monolithic uplink that couples every region's pulls into
    # a single fairness component.
    if topo.hub_trunk_mbps is not None:
        for region in by_region:
            network.set_regional_uplink(hub.name, region, topo.hub_trunk_mbps)
    if topo.regional_trunk_mbps is not None:
        for region in by_region:
            network.set_regional_uplink(
                regional.name, region, topo.regional_trunk_mbps
            )

    # --- the pull schedule ---------------------------------------------
    if work.kind == "zipf":
        schedule = _zipf_schedule(rng, devices, references, work)
    else:
        schedule = _cold_wave_schedule(devices, references, work)
    return SwarmScenario(
        devices=devices,
        network=network,
        hub=hub,
        regional=regional,
        references=references,
        schedule=schedule,
        horizon_s=work.horizon_s,
        seed=spec.seed,
    )


def _zipf_schedule(rng, devices, references, work):
    """Zipf-skewed demand with exponential arrivals, sorted by time."""
    n_images = len(references)
    weights = np.array([1.0 / (rank + 1) ** 1.1 for rank in range(n_images)])
    weights /= weights.sum()
    demand = rng.stream("p2p.demand")
    arrivals = rng.stream("p2p.arrivals")
    schedule: List[Tuple[float, str, ImageReference]] = []
    for dev in devices:
        t = float(arrivals.uniform(0.0, work.horizon_s * 0.3))
        for _ in range(work.pulls_per_device):
            ref = references[int(demand.choice(n_images, p=weights))]
            schedule.append((t, dev.name, ref))
            t += float(arrivals.exponential(work.horizon_s * 0.1))
    schedule.sort(key=lambda item: (item[0], item[1]))
    return schedule


def _cold_wave_schedule(devices, references, work):
    """Two staggered waves: the worst-case-overlap schedule.

    Every device pulls the *same* image almost simultaneously
    (``stagger_s`` apart); a second wave well after the first pulls
    the sibling image (shared base, fresh app layers), so both waves
    are cold.
    """
    first_wave = [
        (i * work.stagger_s, dev.name, references[0])
        for i, dev in enumerate(devices)
    ]
    wave_gap_s = work.horizon_s * 0.5
    second_wave = [
        (wave_gap_s + i * work.stagger_s, dev.name, references[1])
        for i, dev in enumerate(devices)
    ]
    return first_wave + second_wave
