"""repro — reproduction of *DEEP: Edge-based Dataflow Processing with
Hybrid Docker Hub and Regional Registries* (IPPS 2025).

The package is layered bottom-up:

* :mod:`repro.model` — the paper's formal models (Sec. III);
* :mod:`repro.sim` — deterministic discrete-event simulation kernel;
* :mod:`repro.registry` — Docker Hub + MinIO-backed regional registry;
* :mod:`repro.devices` / :mod:`repro.energy` — the two-device testbed
  and its energy meters (pyRAPL / wall-plug stand-ins);
* :mod:`repro.game` — Nash solvers (the Nashpy replacement);
* :mod:`repro.core` — DEEP's scheduler, baselines, and pipeline;
* :mod:`repro.orchestrator` — Kubernetes-flavoured rollout;
* :mod:`repro.workloads` — Table II data, calibration, the case-study
  DAGs, and the wired testbed;
* :mod:`repro.experiments` — regeneration of every table and figure.

Quickstart::

    from repro.workloads import build_testbed, video_processing
    from repro.core import DeepScheduler

    tb = build_testbed()
    app = video_processing(tb.calibration)
    result = DeepScheduler().schedule(app, tb.env)
    print(result.plan.distribution_percent())
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
