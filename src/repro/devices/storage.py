"""Storage accounting on an edge device.

Tracks named reservations (container images, scratch data) against the
device's ``STOR_j`` capacity.  The scheduler consults this ledger for
the ``STOR`` part of the feasibility triple; the runtime updates it as
images land and dataflows materialise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..model.units import BYTES_PER_GB


class StorageExhausted(RuntimeError):
    """A reservation would exceed the device's storage capacity."""


class StorageLedger:
    """Byte-accurate named reservations with a hard capacity."""

    def __init__(self, capacity_gb: float, device: str = "") -> None:
        if capacity_gb <= 0:
            raise ValueError(f"capacity_gb must be > 0, got {capacity_gb}")
        self.device = device
        self.capacity_bytes = int(capacity_gb * BYTES_PER_GB)
        self._entries: Dict[str, int] = {}

    @property
    def used_bytes(self) -> int:
        return sum(self._entries.values())

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    @property
    def used_gb(self) -> float:
        return self.used_bytes / BYTES_PER_GB

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def fits(self, size_bytes: int) -> bool:
        return size_bytes <= self.free_bytes

    def reserve(self, name: str, size_bytes: int) -> None:
        """Reserve ``size_bytes`` under ``name``.

        Re-reserving an existing name adjusts the reservation (the new
        size replaces the old one) — matching how an image upgrade
        replaces its predecessor on disk.
        """
        if size_bytes < 0:
            raise ValueError(f"negative reservation: {size_bytes}")
        current = self._entries.get(name, 0)
        if self.used_bytes - current + size_bytes > self.capacity_bytes:
            raise StorageExhausted(
                f"{self.device or 'device'}: reserving {size_bytes} B for "
                f"{name!r} exceeds capacity ({self.free_bytes + current} B free)"
            )
        self._entries[name] = size_bytes

    def release(self, name: str) -> int:
        """Free the reservation; returns the bytes released."""
        try:
            return self._entries.pop(name)
        except KeyError:
            raise KeyError(
                f"{self.device or 'device'}: no reservation named {name!r}"
            ) from None

    def entries(self) -> List[Tuple[str, int]]:
        return list(self._entries.items())
