"""Piecewise-constant power traces of a simulated device.

The device runtime appends one segment per execution phase (pull,
transfer, compute); between segments the device idles at static power.
The energy meters (:mod:`repro.energy`) integrate these traces — the
RAPL stand-in exactly, the wall-plug stand-in by sampling — which is
how the reproduction exercises the paper's two measurement paths
(pyRAPL on the Intel device, Ketotek meter on the ARM one).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..model.device import Device, Phase


@dataclass(frozen=True)
class PowerSegment:
    """One constant-power interval ``[start_s, end_s)``."""

    start_s: float
    end_s: float
    watts: float
    phase: Phase
    label: str = ""

    def __post_init__(self) -> None:
        if self.end_s < self.start_s:
            raise ValueError(
                f"segment ends before it starts: [{self.start_s}, {self.end_s})"
            )
        if self.watts < 0:
            raise ValueError(f"negative power: {self.watts}")

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    @property
    def energy_j(self) -> float:
        return self.watts * self.duration_s


class PowerTrace:
    """Append-only, time-ordered power history of one device.

    Segments must be appended in non-decreasing start order and may not
    overlap (the paper executes microservices non-concurrently; the
    stage-parallel mode uses one trace per device, where phases on the
    same device still serialise through the core resource).  Gaps
    between segments are implicit idle time at ``static_watts``.
    """

    def __init__(self, device: Device) -> None:
        self.device = device
        self._segments: List[PowerSegment] = []
        self._starts: List[float] = []

    def __len__(self) -> int:
        return len(self._segments)

    @property
    def segments(self) -> List[PowerSegment]:
        return list(self._segments)

    @property
    def end_s(self) -> float:
        """End time of the last segment (0 for an empty trace)."""
        return self._segments[-1].end_s if self._segments else 0.0

    def record(
        self,
        start_s: float,
        duration_s: float,
        phase: Phase,
        utilization: float = 1.0,
        label: str = "",
    ) -> PowerSegment:
        """Append a phase segment; returns it.

        Power is the device's *total* draw for the phase (static +
        active), so integrating the trace directly yields EC.
        """
        if duration_s < 0:
            raise ValueError(f"negative duration: {duration_s}")
        if self._segments and start_s < self._segments[-1].end_s - 1e-12:
            raise ValueError(
                f"segment at {start_s} overlaps previous ending at "
                f"{self._segments[-1].end_s}"
            )
        segment = PowerSegment(
            start_s=start_s,
            end_s=start_s + duration_s,
            watts=self.device.power.total_watts(phase, utilization),
            phase=phase,
            label=label,
        )
        self._segments.append(segment)
        self._starts.append(segment.start_s)
        return segment

    def power_at(self, t_s: float) -> float:
        """Instantaneous draw at time ``t_s`` (static when idle)."""
        index = bisect.bisect_right(self._starts, t_s) - 1
        if index >= 0:
            segment = self._segments[index]
            if segment.start_s <= t_s < segment.end_s:
                return segment.watts
        return self.device.power.static_watts

    def energy_between_j(self, t0_s: float, t1_s: float) -> float:
        """Exact integral of power over ``[t0_s, t1_s]``.

        Piecewise-constant integration: active segments contribute
        their overlap at segment power, the rest of the window idles at
        static power.
        """
        if t1_s < t0_s:
            raise ValueError(f"window ends before it starts: [{t0_s}, {t1_s}]")
        window = t1_s - t0_s
        energy = self.device.power.static_watts * window
        for segment in self._segments:
            overlap = min(t1_s, segment.end_s) - max(t0_s, segment.start_s)
            if overlap > 0:
                energy += (segment.watts - self.device.power.static_watts) * overlap
        return energy

    def total_energy_j(self, until_s: Optional[float] = None) -> float:
        """Energy from t=0 to ``until_s`` (default: last segment end)."""
        return self.energy_between_j(0.0, self.end_s if until_s is None else until_s)

    def active_energy_j(self) -> float:
        """Energy above static over all recorded segments (``Ea``)."""
        static = self.device.power.static_watts
        return sum((s.watts - static) * s.duration_s for s in self._segments)
