"""Edge-device simulator: the paper's two-device testbed, power traces,
storage accounting, and the per-device execution runtime."""

from .executor import DeviceRuntime, ExecutionRecord, IntensityFn, unit_intensity
from .power import PowerSegment, PowerTrace
from .specs import (
    MEDIUM_POWER,
    MEDIUM_SPEC,
    MEDIUM_SPEED_MIPS,
    SMALL_POWER,
    SMALL_SPEC,
    SMALL_SPEED_MIPS,
    medium_device,
    small_device,
)
from .storage import StorageExhausted, StorageLedger

__all__ = [
    "DeviceRuntime",
    "ExecutionRecord",
    "IntensityFn",
    "MEDIUM_POWER",
    "MEDIUM_SPEC",
    "MEDIUM_SPEED_MIPS",
    "PowerSegment",
    "PowerTrace",
    "SMALL_POWER",
    "SMALL_SPEC",
    "SMALL_SPEED_MIPS",
    "StorageExhausted",
    "StorageLedger",
    "medium_device",
    "small_device",
    "unit_intensity",
]
