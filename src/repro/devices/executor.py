"""Device runtime: executes microservices on the simulated testbed.

A :class:`DeviceRuntime` bundles everything one edge device owns —
image cache, storage ledger, power trace, and an execution lock — and
exposes :meth:`run_microservice`, a DES process that walks the paper's
three phases (deploy → receive dataflow → process) while recording the
power segments the energy meters integrate.

Microservices execute **non-concurrently per device** (the paper's
execution model, Sec. III-D): the execution lock serialises them, so
stage parallelism in the orchestrator happens across devices only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Tuple, Union

from ..model.application import Microservice
from ..model.device import Device, Phase
from ..model.metrics import EnergyBreakdown, PhaseTimes
from ..model.network import NetworkModel
from ..model.units import bytes_to_mb
from ..registry.base import ImageReference, Registry
from ..registry.cache import ImageCache
from ..registry.client import PullPolicy, PullResult, RegistryClient
from ..registry.p2p import P2PPullResult, P2PRegistry
from ..sim.engine import Simulator
from ..sim.resources import Resource
from ..sim.transfers import TransferEngine, TransferModel
from .power import PowerTrace
from .storage import StorageLedger

#: (ms_name, device_name) -> compute intensity multiplier.  Calibration
#: fits these so simulated EC matches Table II per microservice.
IntensityFn = Callable[[str, str], float]


def unit_intensity(_service: str, _device: str) -> float:
    """Default intensity: every workload draws the calibrated baseline."""
    return 1.0


@dataclass(frozen=True)
class ExecutionRecord:
    """Everything measured about one microservice execution."""

    service: str
    device: str
    registry: str
    start_s: float
    times: PhaseTimes
    energy: EnergyBreakdown
    pull: Union[PullResult, P2PPullResult]
    intensity: float

    @property
    def end_s(self) -> float:
        return self.start_s + self.times.completion_s

    @property
    def completion_s(self) -> float:
        return self.times.completion_s

    @property
    def energy_j(self) -> float:
        return self.energy.total_j

    @property
    def cache_hit(self) -> bool:
        return self.pull.cache_hit


class DeviceRuntime:
    """One device's runtime state inside a simulation.

    When a :class:`~repro.registry.p2p.P2PRegistry` is attached the
    deploy phase uses the three-tier pull plan, which is inherently
    *layered*: ``pull_policy`` and the whole-image ``warm_fraction``
    calibration do not apply on that path (shared base layers are
    deduplicated for real instead of being approximated).  Compare
    P2P runs against ``PullPolicy.LAYERED`` baselines, not
    ``WHOLE_IMAGE`` ones, to isolate the effect of the peer tier.
    """

    def __init__(
        self,
        sim: Simulator,
        device: Device,
        network: NetworkModel,
        pull_policy: PullPolicy = PullPolicy.WHOLE_IMAGE,
        intensity: IntensityFn = unit_intensity,
        p2p: Optional[P2PRegistry] = None,
        transfer_model: TransferModel = TransferModel.ANALYTIC,
        engine: Optional[TransferEngine] = None,
    ) -> None:
        if transfer_model is TransferModel.TIME_RESOLVED and engine is None:
            raise ValueError(
                "TransferModel.TIME_RESOLVED needs a shared TransferEngine"
            )
        self.sim = sim
        self.device = device
        self.network = network
        self.transfer_model = transfer_model
        self.engine = engine
        self.cache = ImageCache(device.spec.storage_gb, device.name)
        self.scratch = StorageLedger(device.spec.storage_gb, device.name)
        self.trace = PowerTrace(device)
        self.client = RegistryClient(pull_policy)
        self.intensity = intensity
        self.p2p = p2p
        if p2p is not None:
            # The discovery backend's processes (gossip anti-entropy
            # rounds) must tick on this runtime's clock; binding is a
            # no-op for the omniscient default or when the cluster
            # already bound it.
            p2p.swarm.discovery.bind(sim)
            # Joining the swarm publishes this device's cache contents
            # to the peer index (and keeps them published via the
            # cache subscription hook).
            p2p.swarm.add_device(device.name, self.cache, region=device.region)
        self._lock = Resource(sim, 1)
        self.records: List[ExecutionRecord] = []

    @property
    def name(self) -> str:
        return self.device.name

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def pull_seconds(self, registry_name: str, transferred_bytes: int) -> float:
        """Seconds to move ``transferred_bytes`` from the registry."""
        if transferred_bytes == 0:
            return 0.0
        return self.network.registry_channel(
            registry_name, self.name
        ).transfer_time_s(bytes_to_mb(transferred_bytes))

    def transfer_seconds(
        self, incoming: Iterable[Tuple[str, float]], ingress_mb: float
    ) -> float:
        """``Tc`` for upstream flows plus external ingress."""
        total = sum(
            self.network.dataflow_time_s(src, self.name, mb)
            for src, mb in incoming
        )
        if ingress_mb > 0:
            total += self.network.ingress_time_s(self.name, ingress_mb)
        return total

    def compute_seconds(self, service: Microservice) -> float:
        return service.requirements.cpu_mi / self.device.spec.speed_mips

    # ------------------------------------------------------------------
    # the execution process
    # ------------------------------------------------------------------
    def run_microservice(
        self,
        service: Microservice,
        registry: Registry,
        reference: ImageReference,
        incoming: Iterable[Tuple[str, float]] = (),
    ):
        """DES process executing ``service`` on this device.

        Yields simulator events; its return value (via the process
        completion event) is the :class:`ExecutionRecord`.
        """
        grant = self._lock.request()
        yield grant
        try:
            start_s = self.sim.now
            power = self.device.power

            # Phase 1 — deployment: pull what the cache doesn't hold.
            pull: Union[PullResult, P2PPullResult]
            if self.transfer_model is TransferModel.TIME_RESOLVED:
                # Pulls run through the shared-bandwidth engine: layers
                # occupy links for their real (contended) duration and
                # enter the cache at transfer completion.
                if self.p2p is not None:
                    pull = yield from self.p2p.pull_process(
                        reference,
                        self.device.arch,
                        self.name,
                        self.cache,
                        self.engine,
                    )
                    registry_name = self.p2p.name
                else:
                    scale = 1.0
                    if self.client.policy is PullPolicy.WHOLE_IMAGE:
                        scale = 1.0 - service.warm_fraction
                    pull = yield from self.client.pull_process(
                        registry,
                        reference,
                        self.device.arch,
                        self.cache,
                        self.engine,
                        client_name=self.name,
                        bytes_scale=scale,
                    )
                    registry_name = registry.name
                deploy_s = self.sim.now - start_s
                if deploy_s > 0:
                    # Recorded retroactively — the duration is only
                    # known once the contended transfers complete.
                    self.trace.record(
                        start_s, deploy_s, Phase.PULL, label=service.name
                    )
            else:
                if self.p2p is not None:
                    # Three-tier pull: each missing layer comes from its
                    # cheapest source (peer → regional → hub); the plan's
                    # per-channel estimate is the deployment time.
                    pull = self.p2p.pull(
                        reference,
                        self.device.arch,
                        self.name,
                        self.cache,
                        now_s=self.sim.now,
                    )
                    registry_name = self.p2p.name
                    deploy_s = pull.seconds
                else:
                    pull = self.client.pull(
                        registry,
                        reference,
                        self.device.arch,
                        self.cache,
                        client_name=self.name,
                        now_s=self.sim.now,
                    )
                    registry_name = registry.name
                    transferred = pull.bytes_transferred
                    if self.client.policy is PullPolicy.WHOLE_IMAGE:
                        # The whole-image model cannot see shared base
                        # layers; the calibrated warm fraction
                        # approximates them (layered mode dedups for
                        # real instead).
                        transferred = int(
                            transferred * (1.0 - service.warm_fraction)
                        )
                    deploy_s = self.pull_seconds(registry.name, transferred)
                if deploy_s > 0:
                    self.trace.record(
                        self.sim.now, deploy_s, Phase.PULL, label=service.name
                    )
                    yield self.sim.timeout(deploy_s)

            # Phase 2 — dataflow transmission (upstream + ingress).
            transfer_s = self.transfer_seconds(incoming, service.ingress_mb)
            if transfer_s > 0:
                self.trace.record(
                    self.sim.now, transfer_s, Phase.TRANSFER, label=service.name
                )
                yield self.sim.timeout(transfer_s)

            # Phase 3 — processing.
            scale = self.intensity(service.name, self.name)
            compute_s = self.compute_seconds(service)
            if compute_s > 0:
                self.trace.record(
                    self.sim.now,
                    compute_s,
                    Phase.COMPUTE,
                    utilization=scale,
                    label=service.name,
                )
                yield self.sim.timeout(compute_s)

            times = PhaseTimes(deploy_s, transfer_s, compute_s)
            energy = EnergyBreakdown(
                pull_j=power.active_watts(Phase.PULL) * deploy_s,
                transfer_j=power.active_watts(Phase.TRANSFER) * transfer_s,
                compute_j=power.active_watts(Phase.COMPUTE, scale) * compute_s,
                static_j=power.static_watts * times.completion_s,
            )
            record = ExecutionRecord(
                service=service.name,
                device=self.name,
                registry=registry_name,
                start_s=start_s,
                times=times,
                energy=energy,
                pull=pull,
                intensity=scale,
            )
            self.records.append(record)
            return record
        finally:
            self._lock.release()

    def total_used_bytes(self) -> int:
        """Images + scratch currently occupying the device's storage."""
        return self.cache.used_bytes + self.scratch.used_bytes
