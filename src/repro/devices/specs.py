"""The paper's physical testbed (Sec. IV-A) as device specs.

Two heterogeneous edge devices:

* **medium** — 8-core Intel® Core™ i7-7700, 16 GB RAM, 64 GB storage,
  Ubuntu 20.04, x86-64.  Energy measured with pyRAPL (package domain).
* **small** — 4-core ARM Raspberry Pi 4, 8 GB RAM, 32 GB storage,
  Debian 12.  Energy measured with a Ketotek wall-plug meter.

Processing speeds are on an arbitrary MI/s scale; only their *ratio*
matters to the model (it sets how much slower the Pi computes), and the
calibration fits every other constant against Table II.  The default
power models below are the calibration's starting point and are
overridden by the fitted values in :mod:`repro.workloads.calibration`.
"""

from __future__ import annotations

from ..model.device import Arch, Device, DeviceSpec, PowerModel

#: Aggregate speed of the i7-7700 on the model's MI/s scale.
MEDIUM_SPEED_MIPS = 36_000.0

#: Aggregate speed of the Raspberry Pi 4.  The ratio ~3.75 reflects the
#: clock (3.6 vs 1.5 GHz) and core-count gap of the testbed.
SMALL_SPEED_MIPS = 9_600.0

MEDIUM_SPEC = DeviceSpec(
    name="medium",
    arch=Arch.AMD64,
    cores=8,
    speed_mips=MEDIUM_SPEED_MIPS,
    memory_gb=16.0,
    storage_gb=64.0,
)

SMALL_SPEC = DeviceSpec(
    name="small",
    arch=Arch.ARM64,
    cores=4,
    speed_mips=SMALL_SPEED_MIPS,
    memory_gb=8.0,
    storage_gb=32.0,
)

#: pyRAPL measures the package domain, so the "static" floor is the
#: package idle draw, not wall power.
MEDIUM_POWER = PowerModel(
    static_watts=2.0,
    compute_watts=24.0,
    pull_watts=1.0,
    transfer_watts=0.8,
)

#: The Ketotek meter sees the whole board: higher static share.
SMALL_POWER = PowerModel(
    static_watts=2.7,
    compute_watts=3.8,
    pull_watts=0.6,
    transfer_watts=0.5,
)


def medium_device(power: PowerModel = MEDIUM_POWER, region: str = "edge") -> Device:
    """The Intel i7-7700 'medium' testbed device."""
    return Device(spec=MEDIUM_SPEC, power=power, region=region)


def small_device(power: PowerModel = SMALL_POWER, region: str = "edge") -> Device:
    """The Raspberry Pi 4 'small' testbed device."""
    return Device(spec=SMALL_SPEC, power=power, region=region)
