"""MinIO-style S3-compatible object store (the regional registry backend).

The paper provisions its regional Docker registry on a local MinIO
server (Sec. IV-C): an S3-compatible object store holding the image
blobs and manifests.  This module reproduces the storage semantics the
registry needs — buckets, keyed objects, ETags, prefix listing,
multipart upload, and a capacity quota (the paper provisions "a
specific storage capacity according to the user's requirements
(e.g., 100 GB)").

Objects may be *materialised* (real bytes, ETag = MD5 like S3) or
*synthetic* (nominal size only, ETag derived from the declared digest),
matching the two blob kinds in :mod:`repro.registry.blobstore`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..model.units import BYTES_PER_GB


class MinioError(RuntimeError):
    """Base class for object-store failures."""


class NoSuchBucket(MinioError):
    pass


class NoSuchKey(MinioError):
    pass


class BucketAlreadyExists(MinioError):
    pass


class QuotaExceeded(MinioError):
    """Put would exceed the store's provisioned capacity."""


class UploadNotFound(MinioError):
    pass


@dataclass(frozen=True)
class ObjectInfo:
    """Metadata of one stored object (the S3 HEAD response)."""

    bucket: str
    key: str
    size_bytes: int
    etag: str
    content_type: str = "application/octet-stream"


@dataclass
class _StoredObject:
    info: ObjectInfo
    data: Optional[bytes]


def _etag_of(data: bytes) -> str:
    # S3 uses MD5 for single-part uploads; usedforsecurity=False keeps
    # this valid on FIPS-locked interpreters.
    return hashlib.md5(data, usedforsecurity=False).hexdigest()


def _etag_synthetic(key: str, size_bytes: int) -> str:
    return hashlib.md5(
        f"synthetic:{key}:{size_bytes}".encode(), usedforsecurity=False
    ).hexdigest()


@dataclass
class _MultipartUpload:
    bucket: str
    key: str
    parts: Dict[int, bytes] = field(default_factory=dict)


class MinioStore:
    """An in-memory S3-compatible object store with a capacity quota.

    Parameters
    ----------
    capacity_gb:
        Provisioned capacity; ``None`` disables the quota.  The paper's
        example deployment provisions 100 GB.
    """

    def __init__(self, capacity_gb: Optional[float] = 100.0) -> None:
        if capacity_gb is not None and capacity_gb <= 0:
            raise ValueError(f"capacity_gb must be > 0, got {capacity_gb}")
        self.capacity_bytes: Optional[int] = (
            None if capacity_gb is None else int(capacity_gb * BYTES_PER_GB)
        )
        self._buckets: Dict[str, Dict[str, _StoredObject]] = {}
        self._uploads: Dict[str, _MultipartUpload] = {}
        self._upload_seq = 0

    # ------------------------------------------------------------------
    # buckets
    # ------------------------------------------------------------------
    def make_bucket(self, bucket: str) -> None:
        if not bucket:
            raise ValueError("bucket name must be non-empty")
        if bucket in self._buckets:
            raise BucketAlreadyExists(bucket)
        self._buckets[bucket] = {}

    def bucket_exists(self, bucket: str) -> bool:
        return bucket in self._buckets

    def list_buckets(self) -> List[str]:
        return list(self._buckets)

    def remove_bucket(self, bucket: str) -> None:
        objects = self._bucket(bucket)
        if objects:
            raise MinioError(f"bucket {bucket!r} not empty")
        del self._buckets[bucket]

    def _bucket(self, bucket: str) -> Dict[str, _StoredObject]:
        try:
            return self._buckets[bucket]
        except KeyError:
            raise NoSuchBucket(bucket) from None

    # ------------------------------------------------------------------
    # objects
    # ------------------------------------------------------------------
    def used_bytes(self) -> int:
        return sum(
            obj.info.size_bytes
            for objects in self._buckets.values()
            for obj in objects.values()
        )

    def _check_quota(self, bucket: str, key: str, incoming_bytes: int) -> None:
        if self.capacity_bytes is None:
            return
        current = self.used_bytes()
        existing = self._buckets.get(bucket, {}).get(key)
        if existing is not None:
            current -= existing.info.size_bytes
        if current + incoming_bytes > self.capacity_bytes:
            raise QuotaExceeded(
                f"putting {incoming_bytes} B into {bucket}/{key} exceeds "
                f"capacity {self.capacity_bytes} B (used {current} B)"
            )

    def put_object(
        self,
        bucket: str,
        key: str,
        data: bytes,
        content_type: str = "application/octet-stream",
    ) -> ObjectInfo:
        """Store real bytes under ``bucket/key`` (overwrite allowed)."""
        objects = self._bucket(bucket)
        self._check_quota(bucket, key, len(data))
        info = ObjectInfo(bucket, key, len(data), _etag_of(data), content_type)
        objects[key] = _StoredObject(info=info, data=data)
        return info

    def put_synthetic_object(
        self,
        bucket: str,
        key: str,
        size_bytes: int,
        content_type: str = "application/octet-stream",
    ) -> ObjectInfo:
        """Store a size-only object (stands in for a multi-GB blob)."""
        if size_bytes < 0:
            raise ValueError(f"negative object size: {size_bytes}")
        objects = self._bucket(bucket)
        self._check_quota(bucket, key, size_bytes)
        info = ObjectInfo(
            bucket, key, size_bytes, _etag_synthetic(key, size_bytes), content_type
        )
        objects[key] = _StoredObject(info=info, data=None)
        return info

    def get_object(self, bucket: str, key: str) -> bytes:
        """Fetch object bytes; synthetic objects cannot be read."""
        obj = self._object(bucket, key)
        if obj.data is None:
            raise MinioError(
                f"{bucket}/{key} is synthetic (size-only); no bytes to read"
            )
        return obj.data

    def stat_object(self, bucket: str, key: str) -> ObjectInfo:
        return self._object(bucket, key).info

    def object_exists(self, bucket: str, key: str) -> bool:
        try:
            self._object(bucket, key)
            return True
        except (NoSuchBucket, NoSuchKey):
            return False

    def remove_object(self, bucket: str, key: str) -> None:
        objects = self._bucket(bucket)
        if key not in objects:
            raise NoSuchKey(f"{bucket}/{key}")
        del objects[key]

    def list_objects(self, bucket: str, prefix: str = "") -> List[ObjectInfo]:
        """Objects whose key starts with ``prefix``, sorted by key."""
        objects = self._bucket(bucket)
        return [
            obj.info
            for key, obj in sorted(objects.items())
            if key.startswith(prefix)
        ]

    def _object(self, bucket: str, key: str) -> _StoredObject:
        objects = self._bucket(bucket)
        try:
            return objects[key]
        except KeyError:
            raise NoSuchKey(f"{bucket}/{key}") from None

    # ------------------------------------------------------------------
    # multipart upload (S3 semantics: parts assembled on completion)
    # ------------------------------------------------------------------
    def initiate_multipart(self, bucket: str, key: str) -> str:
        self._bucket(bucket)  # must exist
        self._upload_seq += 1
        upload_id = f"upload-{self._upload_seq}"
        self._uploads[upload_id] = _MultipartUpload(bucket=bucket, key=key)
        return upload_id

    def upload_part(self, upload_id: str, part_number: int, data: bytes) -> str:
        if part_number < 1:
            raise ValueError(f"part numbers start at 1, got {part_number}")
        upload = self._upload(upload_id)
        upload.parts[part_number] = data
        return _etag_of(data)

    def complete_multipart(self, upload_id: str) -> ObjectInfo:
        """Assemble parts in part-number order into the final object."""
        upload = self._upload(upload_id)
        if not upload.parts:
            raise MinioError(f"multipart {upload_id} has no parts")
        assembled = b"".join(
            upload.parts[n] for n in sorted(upload.parts)
        )
        del self._uploads[upload_id]
        return self.put_object(upload.bucket, upload.key, assembled)

    def abort_multipart(self, upload_id: str) -> None:
        self._upload(upload_id)
        del self._uploads[upload_id]

    def _upload(self, upload_id: str) -> _MultipartUpload:
        try:
            return self._uploads[upload_id]
        except KeyError:
            raise UploadNotFound(upload_id) from None
