"""Content digests in the OCI ``sha256:<hex>`` convention.

Both simulated registries (Docker Hub and the MinIO-backed regional
one) are content-addressed: blobs are identified by the SHA-256 of
their bytes, manifests by the SHA-256 of their canonical serialisation.
This is the invariant that makes cross-registry layer deduplication
(the ablation A2 extension) sound: the *same* layer has the *same*
digest in every registry.
"""

from __future__ import annotations

import hashlib
import re

_DIGEST_RE = re.compile(r"^sha256:[0-9a-f]{64}$")

DIGEST_PREFIX = "sha256:"


def digest_bytes(data: bytes) -> str:
    """``sha256:<hex>`` digest of raw bytes."""
    return DIGEST_PREFIX + hashlib.sha256(data).hexdigest()


def digest_text(text: str) -> str:
    """Digest of UTF-8 encoded text (canonical manifest serialisation)."""
    return digest_bytes(text.encode("utf-8"))


def is_digest(value: str) -> bool:
    """True if ``value`` is a syntactically valid sha256 digest ref."""
    return bool(_DIGEST_RE.match(value))


def validate_digest(value: str) -> str:
    """Return ``value`` if valid, else raise ``ValueError``."""
    if not is_digest(value):
        raise ValueError(f"malformed digest: {value!r}")
    return value


def short_digest(value: str, length: int = 12) -> str:
    """Abbreviated hex (like ``docker images`` output)."""
    validate_digest(value)
    return value[len(DIGEST_PREFIX) : len(DIGEST_PREFIX) + length]
