"""Content-addressable blob storage shared by all simulated registries.

Two kinds of blobs coexist:

* **materialised** blobs carry real bytes (used in tests and for small
  config blobs) — their digest is verified against the content;
* **synthetic** blobs carry only a nominal size (used for the multi-GB
  image layers of the paper's Table II, which we obviously do not want
  to allocate) — their digest is supplied by the producer and acts as
  the identity for deduplication.

Both kinds behave identically for the pull protocol: what matters to
the model is the digest and the byte size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from .digest import digest_bytes, validate_digest


@dataclass(frozen=True)
class BlobRecord:
    """A stored blob: identity, size, and (optionally) content."""

    digest: str
    size_bytes: int
    data: Optional[bytes] = None

    def __post_init__(self) -> None:
        validate_digest(self.digest)
        if self.size_bytes < 0:
            raise ValueError(f"negative blob size: {self.size_bytes}")
        if self.data is not None and len(self.data) != self.size_bytes:
            raise ValueError(
                f"blob {self.digest}: size {self.size_bytes} != len(data) "
                f"{len(self.data)}"
            )

    @property
    def materialised(self) -> bool:
        return self.data is not None


class BlobNotFound(KeyError):
    """Raised when a digest is absent from a store."""


class BlobStore:
    """Digest-keyed store with idempotent puts.

    Re-putting an existing digest is a no-op (content-addressing makes
    it safe); putting *different* content under the same digest is a
    corruption and raises.
    """

    def __init__(self) -> None:
        self._blobs: Dict[str, BlobRecord] = {}

    def __len__(self) -> int:
        return len(self._blobs)

    def __contains__(self, digest: object) -> bool:
        return digest in self._blobs

    def __iter__(self) -> Iterator[BlobRecord]:
        return iter(self._blobs.values())

    def put_bytes(self, data: bytes) -> BlobRecord:
        """Store real content; returns the (possibly pre-existing) record."""
        digest = digest_bytes(data)
        existing = self._blobs.get(digest)
        if existing is not None:
            return existing
        record = BlobRecord(digest=digest, size_bytes=len(data), data=data)
        self._blobs[digest] = record
        return record

    def put_synthetic(self, digest: str, size_bytes: int) -> BlobRecord:
        """Store a size-only blob under a producer-supplied digest."""
        validate_digest(digest)
        existing = self._blobs.get(digest)
        if existing is not None:
            if existing.size_bytes != size_bytes:
                raise ValueError(
                    f"digest collision on {digest}: sizes "
                    f"{existing.size_bytes} != {size_bytes}"
                )
            return existing
        record = BlobRecord(digest=digest, size_bytes=size_bytes)
        self._blobs[digest] = record
        return record

    def put_record(self, record: BlobRecord) -> BlobRecord:
        """Copy a record from another store (registry mirroring)."""
        existing = self._blobs.get(record.digest)
        if existing is not None:
            if existing.size_bytes != record.size_bytes:
                raise ValueError(f"digest collision on {record.digest}")
            return existing
        self._blobs[record.digest] = record
        return record

    def get(self, digest: str) -> BlobRecord:
        try:
            return self._blobs[digest]
        except KeyError:
            raise BlobNotFound(digest) from None

    def stat(self, digest: str) -> int:
        """Size in bytes of the blob (BlobNotFound if absent)."""
        return self.get(digest).size_bytes

    def delete(self, digest: str) -> None:
        try:
            del self._blobs[digest]
        except KeyError:
            raise BlobNotFound(digest) from None

    def total_bytes(self) -> int:
        """Sum of stored blob sizes (dedup already applied)."""
        return sum(b.size_bytes for b in self._blobs.values())

    def digests(self) -> list:
        return list(self._blobs)
