"""Container-registry substrate: Docker Hub and MinIO-backed regional
registries, content-addressed blobs, manifests, pulls and caching."""

from .base import ImageReference, Registry, RegistryError, mirror_image
from .blobstore import BlobNotFound, BlobRecord, BlobStore
from .cache import CacheEvent, CacheFull, EvictionRecord, ImageCache
from .chunks import (
    DEFAULT_CHUNK_SIZE_BYTES,
    Chunk,
    ChunkFetchOutcome,
    ChunkLedger,
    ChunkMap,
    ChunkStore,
    ChunkSwarmPlanner,
)
from .client import PullPolicy, PullResult, RegistryClient
from .digest import digest_bytes, digest_text, is_digest, short_digest
from .discovery import (
    DiscoveryBackend,
    GossipDiscovery,
    OmniscientDiscovery,
    ViewRecord,
)
from .hub import DockerHub, PointOfPresence, PullRateLimiter, RateLimitExceeded
from .images import OFFICIAL_BASES, BaseImage, build_image, split_sizes, synthetic_blob
from .manifest import ImageManifest, LayerDescriptor, ManifestList
from .minio import (
    BucketAlreadyExists,
    MinioError,
    MinioStore,
    NoSuchBucket,
    NoSuchKey,
    ObjectInfo,
    QuotaExceeded,
)
from .p2p import (
    AdaptiveReplicator,
    LayerSource,
    P2PPullResult,
    P2PRegistry,
    PeerIndex,
    PeerSwarm,
    PullPlan,
    PullPlanner,
    ReplicationAction,
    ReplicatorCycle,
    SourceKind,
)
from .regional import RegionalRegistry
from .repository import ManifestNotFound, Repository, RepositoryIndex

__all__ = [
    "AdaptiveReplicator",
    "BaseImage",
    "BlobNotFound",
    "BlobRecord",
    "BlobStore",
    "BucketAlreadyExists",
    "CacheEvent",
    "CacheFull",
    "Chunk",
    "ChunkFetchOutcome",
    "ChunkLedger",
    "ChunkMap",
    "ChunkStore",
    "ChunkSwarmPlanner",
    "DEFAULT_CHUNK_SIZE_BYTES",
    "DiscoveryBackend",
    "DockerHub",
    "EvictionRecord",
    "GossipDiscovery",
    "ImageCache",
    "ImageManifest",
    "ImageReference",
    "LayerDescriptor",
    "LayerSource",
    "ManifestList",
    "ManifestNotFound",
    "MinioError",
    "MinioStore",
    "NoSuchBucket",
    "NoSuchKey",
    "OFFICIAL_BASES",
    "ObjectInfo",
    "OmniscientDiscovery",
    "P2PPullResult",
    "P2PRegistry",
    "PeerIndex",
    "PeerSwarm",
    "PointOfPresence",
    "PullPlan",
    "PullPlanner",
    "PullPolicy",
    "PullRateLimiter",
    "PullResult",
    "QuotaExceeded",
    "RateLimitExceeded",
    "RegionalRegistry",
    "Registry",
    "RegistryClient",
    "RegistryError",
    "ReplicationAction",
    "ReplicatorCycle",
    "Repository",
    "RepositoryIndex",
    "SourceKind",
    "ViewRecord",
    "build_image",
    "digest_bytes",
    "digest_text",
    "is_digest",
    "mirror_image",
    "short_digest",
    "split_sizes",
    "synthetic_blob",
]
