"""OCI-style image manifests and multi-architecture manifest lists.

The paper tags every image for ``amd64`` and ``arm64`` (Sec. IV-C);
here a :class:`ManifestList` maps architectures to per-platform
:class:`ImageManifest` objects, each an ordered list of layers.

Manifests are content-addressed: their digest is the SHA-256 of a
canonical JSON serialisation, so two registries holding the same image
agree on its identity — the property the hybrid deployment and the
layer-dedup extension both rely on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..model.device import Arch
from .digest import digest_text, validate_digest

MEDIA_TYPE_LAYER = "application/vnd.oci.image.layer.v1.tar+gzip"
MEDIA_TYPE_CONFIG = "application/vnd.oci.image.config.v1+json"
MEDIA_TYPE_MANIFEST = "application/vnd.oci.image.manifest.v1+json"
MEDIA_TYPE_INDEX = "application/vnd.oci.image.index.v1+json"


@dataclass(frozen=True)
class LayerDescriptor:
    """Reference to one image layer blob."""

    digest: str
    size_bytes: int
    media_type: str = MEDIA_TYPE_LAYER

    def __post_init__(self) -> None:
        validate_digest(self.digest)
        if self.size_bytes < 0:
            raise ValueError(f"negative layer size: {self.size_bytes}")

    def to_json_obj(self) -> dict:
        return {
            "mediaType": self.media_type,
            "digest": self.digest,
            "size": self.size_bytes,
        }


@dataclass(frozen=True)
class ImageManifest:
    """A single-platform image: config + ordered layers.

    Attributes
    ----------
    arch:
        Target architecture of this manifest.
    config_digest:
        Digest of the (tiny) config blob.
    layers:
        Ordered layer descriptors; pull order is list order.
    annotations:
        Free-form metadata (e.g. the source repository).
    """

    arch: Arch
    config_digest: str
    layers: Tuple[LayerDescriptor, ...]
    annotations: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        validate_digest(self.config_digest)
        if not self.layers:
            raise ValueError("image manifest must have at least one layer")

    @property
    def total_layer_bytes(self) -> int:
        """Compressed image size (what a cold pull transfers)."""
        return sum(layer.size_bytes for layer in self.layers)

    def layer_digests(self) -> List[str]:
        return [layer.digest for layer in self.layers]

    def canonical_json(self) -> str:
        """Stable serialisation used for content addressing."""
        obj = {
            "schemaVersion": 2,
            "mediaType": MEDIA_TYPE_MANIFEST,
            "architecture": self.arch.value,
            "config": {
                "mediaType": MEDIA_TYPE_CONFIG,
                "digest": self.config_digest,
            },
            "layers": [layer.to_json_obj() for layer in self.layers],
            "annotations": dict(sorted(self.annotations.items())),
        }
        return json.dumps(obj, sort_keys=True, separators=(",", ":"))

    @property
    def digest(self) -> str:
        return digest_text(self.canonical_json())


@dataclass(frozen=True)
class ManifestList:
    """Multi-arch index: architecture → platform manifest.

    Mirrors an OCI image index; a tag points at a manifest list and the
    pulling device selects the entry matching its architecture.
    """

    manifests: Tuple[ImageManifest, ...]
    annotations: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.manifests:
            raise ValueError("manifest list must be non-empty")
        archs = [m.arch for m in self.manifests]
        if len(set(archs)) != len(archs):
            raise ValueError(f"duplicate architectures in manifest list: {archs}")

    def architectures(self) -> List[Arch]:
        return [m.arch for m in self.manifests]

    def for_arch(self, arch: Arch) -> ImageManifest:
        """Platform manifest for ``arch`` (KeyError if unsupported)."""
        for manifest in self.manifests:
            if manifest.arch is arch:
                return manifest
        raise KeyError(
            f"no manifest for {arch.value}; available: "
            f"{[a.value for a in self.architectures()]}"
        )

    def supports(self, arch: Arch) -> bool:
        return any(m.arch is arch for m in self.manifests)

    def canonical_json(self) -> str:
        obj = {
            "schemaVersion": 2,
            "mediaType": MEDIA_TYPE_INDEX,
            "manifests": [
                {
                    "mediaType": MEDIA_TYPE_MANIFEST,
                    "digest": m.digest,
                    "platform": {"architecture": m.arch.value, "os": "linux"},
                }
                for m in self.manifests
            ],
            "annotations": dict(sorted(self.annotations.items())),
        }
        return json.dumps(obj, sort_keys=True, separators=(",", ":"))

    @property
    def digest(self) -> str:
        return digest_text(self.canonical_json())
