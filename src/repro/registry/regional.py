"""The MinIO-backed regional registry (paper Sec. IV-C).

The paper deploys a Docker registry on a local MinIO server
(``dcloud2.itec.aau.at:9001``) provisioned with a capacity quota.  Here
:class:`RegionalRegistry` keeps the fast in-memory index of
:class:`~repro.registry.base.Registry` for lookups while persisting
every blob and manifest into a :class:`~repro.registry.minio.MinioStore`
— the same layering as the real deployment (registry process in front,
S3-compatible object storage behind).

Key layout in the bucket (mirrors the upstream ``docker-registry``
storage driver):

* ``blobs/sha256/<hex>``           — layer and config blobs,
* ``manifests/<repo>/tags/<tag>``  — manifest-list JSON per tag.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..model.registry import RegistryInfo, RegistryKind
from .base import Registry, RegistryError
from .blobstore import BlobRecord
from .manifest import ManifestList
from .minio import MinioStore, QuotaExceeded

DEFAULT_BUCKET = "docker-registry"


class RegionalRegistry(Registry):
    """Edge-regional registry persisting into an S3-style object store.

    Parameters
    ----------
    name:
        Registry name used in plans and network channels.
    store:
        Backing object store; a fresh 100 GB one is created if omitted
        (the paper's example provisioning).
    bucket:
        Bucket holding registry state.
    endpoint:
        Informational endpoint (the paper's MinIO console URL).
    """

    def __init__(
        self,
        name: str = "regional",
        store: Optional[MinioStore] = None,
        bucket: str = DEFAULT_BUCKET,
        endpoint: str = "https://dcloud2.itec.aau.at:9001",
    ) -> None:
        info = RegistryInfo(name=name, kind=RegistryKind.REGIONAL, endpoint=endpoint)
        super().__init__(info)
        self.store = store if store is not None else MinioStore(capacity_gb=100.0)
        self.bucket = bucket
        if not self.store.bucket_exists(bucket):
            self.store.make_bucket(bucket)

    # ------------------------------------------------------------------
    # persistence helpers
    # ------------------------------------------------------------------
    @staticmethod
    def blob_key(digest: str) -> str:
        algo, _, hexdigest = digest.partition(":")
        return f"blobs/{algo}/{hexdigest}"

    @staticmethod
    def manifest_key(repository: str, tag: str) -> str:
        return f"manifests/{repository}/tags/{tag}"

    def _persist_blob(self, blob: BlobRecord) -> None:
        key = self.blob_key(blob.digest)
        if self.store.object_exists(self.bucket, key):
            return
        if blob.materialised:
            self.store.put_object(self.bucket, key, blob.data)
        else:
            self.store.put_synthetic_object(self.bucket, key, blob.size_bytes)

    # ------------------------------------------------------------------
    # registry API overrides
    # ------------------------------------------------------------------
    def push_image(
        self,
        repository: str,
        tag: str,
        mlist: ManifestList,
        blobs: Iterable[BlobRecord] = (),
    ) -> str:
        """Publish an image, persisting blobs + manifest to MinIO.

        A push that would exceed the provisioned MinIO capacity fails
        with :class:`RegistryError` *before* mutating the in-memory
        index, so a quota breach never leaves a half-published image.
        """
        staged = list(blobs)
        # Dry-run the quota: total new bytes that would land in MinIO.
        new_bytes = sum(
            blob.size_bytes
            for blob in staged
            if not self.store.object_exists(self.bucket, self.blob_key(blob.digest))
        )
        if (
            self.store.capacity_bytes is not None
            and self.store.used_bytes() + new_bytes > self.store.capacity_bytes
        ):
            raise RegistryError(
                f"push of {repository}:{tag} needs {new_bytes} new bytes; "
                f"regional store over capacity "
                f"({self.store.used_bytes()}/{self.store.capacity_bytes})"
            )
        digest = super().push_image(repository, tag, mlist, staged)
        try:
            for blob in staged:
                self._persist_blob(blob)
            self.store.put_object(
                self.bucket,
                self.manifest_key(repository, tag),
                mlist.canonical_json().encode("utf-8"),
                content_type="application/vnd.oci.image.index.v1+json",
            )
        except QuotaExceeded as exc:  # pragma: no cover - guarded above
            raise RegistryError(str(exc)) from exc
        return digest

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def persisted_blob_count(self) -> int:
        return len(self.store.list_objects(self.bucket, prefix="blobs/"))

    def persisted_bytes(self) -> int:
        return sum(
            info.size_bytes
            for info in self.store.list_objects(self.bucket, prefix="blobs/")
        )

    def free_bytes(self) -> Optional[int]:
        if self.store.capacity_bytes is None:
            return None
        return self.store.capacity_bytes - self.store.used_bytes()
