"""Tagged repositories: the ``name:tag → manifest list`` mapping.

A :class:`Repository` is a named collection of tags, each resolving to
a multi-arch :class:`~repro.registry.manifest.ManifestList`.  Manifests
are also retrievable by digest, mirroring the Docker Registry HTTP API
(`GET /v2/<name>/manifests/<reference>` accepts either form).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from .digest import is_digest
from .manifest import ImageManifest, ManifestList


class ManifestNotFound(KeyError):
    """Raised when a tag or manifest digest cannot be resolved."""


@dataclass
class Repository:
    """One image repository (e.g. ``aau/vp-transcode``)."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("repository name must be non-empty")
        self._tags: Dict[str, str] = {}  # tag -> manifest list digest
        self._lists: Dict[str, ManifestList] = {}  # digest -> list
        self._manifests: Dict[str, ImageManifest] = {}  # digest -> manifest

    # ------------------------------------------------------------------
    # publishing
    # ------------------------------------------------------------------
    def put_manifest_list(self, tag: str, mlist: ManifestList) -> str:
        """Publish ``mlist`` under ``tag``; returns the list digest.

        Retagging is allowed (tags are mutable pointers, like Docker's
        ``latest``); manifests themselves are immutable by digest.
        """
        if not tag:
            raise ValueError("tag must be non-empty")
        digest = mlist.digest
        self._lists[digest] = mlist
        for manifest in mlist.manifests:
            self._manifests[manifest.digest] = manifest
        self._tags[tag] = digest
        return digest

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def tags(self) -> List[str]:
        return list(self._tags)

    def has_tag(self, tag: str) -> bool:
        return tag in self._tags

    def resolve_list(self, reference: str) -> ManifestList:
        """Resolve a tag *or* a manifest-list digest to the list."""
        if is_digest(reference):
            try:
                return self._lists[reference]
            except KeyError:
                raise ManifestNotFound(
                    f"{self.name}@{reference}"
                ) from None
        try:
            return self._lists[self._tags[reference]]
        except KeyError:
            raise ManifestNotFound(f"{self.name}:{reference}") from None

    def resolve_manifest(self, digest: str) -> ImageManifest:
        """Resolve a platform manifest by digest."""
        try:
            return self._manifests[digest]
        except KeyError:
            raise ManifestNotFound(f"{self.name}@{digest}") from None

    def manifest_digests(self) -> List[str]:
        return list(self._manifests)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Repository({self.name!r}, tags={list(self._tags)})"


class RepositoryIndex:
    """Name-keyed collection of repositories within one registry."""

    def __init__(self) -> None:
        self._repos: Dict[str, Repository] = {}

    def __len__(self) -> int:
        return len(self._repos)

    def __iter__(self) -> Iterator[Repository]:
        return iter(self._repos.values())

    def __contains__(self, name: object) -> bool:
        return name in self._repos

    def get(self, name: str) -> Repository:
        try:
            return self._repos[name]
        except KeyError:
            raise ManifestNotFound(f"repository {name!r} not found") from None

    def get_or_create(self, name: str) -> Repository:
        if name not in self._repos:
            self._repos[name] = Repository(name)
        return self._repos[name]

    def names(self) -> List[str]:
        return list(self._repos)
