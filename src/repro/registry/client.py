"""Pull client: what a device's container runtime does at deploy time.

Two pull policies are supported:

* :attr:`PullPolicy.WHOLE_IMAGE` — the paper's model: an image either
  exists on the device (``Td = 0``) or the full ``Size_mi`` is
  transferred.  This is the default everywhere the paper's numbers are
  reproduced.
* :attr:`PullPolicy.LAYERED` — the content-addressable extension:
  only layers missing from the device cache are transferred, so images
  sharing a base (e.g. the HA/LA train/infer pairs built on
  ``python:3.9``) pay for the base once.  Evaluated in ablation A2.

The client does not know about time or energy: it reports *bytes
moved*, and the orchestrator/cost model turns bytes into seconds and
joules via the network and power models.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..model.device import Arch
from .base import ImageReference, Registry
from .cache import EvictionRecord, ImageCache
from .manifest import ImageManifest


class PullPolicy(enum.Enum):
    """Granularity at which deployment transfers are charged."""

    WHOLE_IMAGE = "whole-image"
    LAYERED = "layered"


@dataclass(frozen=True)
class PullResult:
    """Outcome of one image pull.

    Attributes
    ----------
    reference:
        What was pulled.
    registry:
        Which registry served it.
    manifest:
        The platform manifest that was resolved.
    bytes_total:
        Full compressed image size (what a cold pull would move).
    bytes_transferred:
        What this pull actually moved given the cache state.
    layers_total / layers_transferred:
        Layer counts behind the byte numbers.
    evictions:
        Cache evictions triggered by admitting the image.
    """

    reference: ImageReference
    registry: str
    manifest: ImageManifest
    bytes_total: int
    bytes_transferred: int
    layers_total: int
    layers_transferred: int
    evictions: Tuple[EvictionRecord, ...] = ()

    @property
    def cache_hit(self) -> bool:
        """True when nothing had to be transferred."""
        return self.bytes_transferred == 0

    @property
    def hit_ratio(self) -> float:
        """Fraction of bytes served locally."""
        if self.bytes_total == 0:
            return 1.0
        return 1.0 - self.bytes_transferred / self.bytes_total


class RegistryClient:
    """Pulls images from a registry into a device-local cache."""

    def __init__(self, policy: PullPolicy = PullPolicy.WHOLE_IMAGE) -> None:
        self.policy = policy

    def pull_process(
        self,
        registry: Registry,
        reference: ImageReference,
        arch: Arch,
        cache: ImageCache,
        engine,
        client_name: str = "device",
        bytes_scale: float = 1.0,
    ):
        """Time-resolved two-tier pull: a DES process returning the
        :class:`PullResult`.

        Byte accounting is identical to :meth:`pull`; what changes is
        *when* things happen: the payload occupies the registry→device
        shared links of ``engine`` for its real duration, and missing
        layers enter the cache (reserve → commit) only when the
        transfer completes, so concurrent observers never see bytes
        that are still in flight.  ``bytes_scale`` scales the bytes
        *moved on the wire* only (the executor passes the whole-image
        warm fraction through it, mirroring the analytic deploy-time
        scaling); the reported ``bytes_transferred`` stays unscaled.
        """
        manifest = registry.resolve(reference, arch)
        total_layers = list(manifest.layers)
        bytes_total = manifest.total_layer_bytes
        if cache.has_image(manifest):
            for digest in manifest.layer_digests():
                cache.touch(digest)
            return PullResult(
                reference=reference,
                registry=registry.name,
                manifest=manifest,
                bytes_total=bytes_total,
                bytes_transferred=0,
                layers_total=len(total_layers),
                layers_transferred=0,
            )
        registry.meter_pull(client_name, engine.sim.now)
        if self.policy is PullPolicy.WHOLE_IMAGE:
            transferred_layers = total_layers
            bytes_transferred = bytes_total
        else:
            missing_digests = set(cache.missing_layers(manifest))
            transferred_layers = [
                layer for layer in total_layers if layer.digest in missing_digests
            ]
            bytes_transferred = sum(l.size_bytes for l in transferred_layers)
        for layer in transferred_layers:
            registry.fetch_blob(layer.digest)
        missing = [l for l in manifest.layers if l.digest not in cache]
        evictions: List[EvictionRecord] = []
        reserved: List[str] = []
        try:
            for layer in missing:
                evictions.extend(cache.reserve(layer.digest, layer.size_bytes))
                reserved.append(layer.digest)
        except Exception:
            # Release only what *this* call reserved — a concurrent
            # owner's reservation of a shared layer is not ours to drop.
            for digest in reserved:
                cache.release(digest)
            raise
        moved = int(round(bytes_transferred * bytes_scale))
        if moved > 0:
            transfer = engine.start(
                registry.name, client_name, moved, src_is_registry=True
            )
            yield transfer.done
        for layer in missing:
            cache.commit(layer.digest)
        for digest in manifest.layer_digests():
            cache.touch(digest)
        return PullResult(
            reference=reference,
            registry=registry.name,
            manifest=manifest,
            bytes_total=bytes_total,
            bytes_transferred=bytes_transferred,
            layers_total=len(total_layers),
            layers_transferred=len(transferred_layers),
            evictions=tuple(evictions),
        )

    def pull(
        self,
        registry: Registry,
        reference: ImageReference,
        arch: Arch,
        cache: ImageCache,
        client_name: str = "device",
        now_s: float = 0.0,
    ) -> PullResult:
        """Resolve and (if needed) transfer ``reference`` for ``arch``.

        Cache-hit pulls still resolve the manifest (like ``docker pull``
        revalidating a tag) but move zero bytes and are not metered
        against hub rate limits.
        """
        manifest = registry.resolve(reference, arch)
        total_layers = list(manifest.layers)
        bytes_total = manifest.total_layer_bytes

        if cache.has_image(manifest):
            for digest in manifest.layer_digests():
                cache.touch(digest)
            return PullResult(
                reference=reference,
                registry=registry.name,
                manifest=manifest,
                bytes_total=bytes_total,
                bytes_transferred=0,
                layers_total=len(total_layers),
                layers_transferred=0,
            )

        registry.meter_pull(client_name, now_s)

        if self.policy is PullPolicy.WHOLE_IMAGE:
            transferred_layers = total_layers
            bytes_transferred = bytes_total
        else:
            missing = set(cache.missing_layers(manifest))
            transferred_layers = [
                layer for layer in total_layers if layer.digest in missing
            ]
            bytes_transferred = sum(l.size_bytes for l in transferred_layers)

        # Integrity: every transferred layer must exist in the registry.
        for layer in transferred_layers:
            registry.fetch_blob(layer.digest)

        evictions = cache.admit_image(manifest)
        return PullResult(
            reference=reference,
            registry=registry.name,
            manifest=manifest,
            bytes_total=bytes_total,
            bytes_transferred=bytes_transferred,
            layers_total=len(total_layers),
            layers_transferred=len(transferred_layers),
            evictions=tuple(evictions),
        )
