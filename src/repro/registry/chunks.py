"""Chunked multi-source layer transfers: BitTorrent-style swarming.

The planner in :mod:`repro.registry.p2p` resolves each layer to exactly
**one** source, so a single slow seeder caps the whole pull even when
five peers hold the same hot layer.  This module changes the unit of
transfer: layers are split into fixed-size, digest-addressed **chunks**
pulled *in parallel from many sources at once* (EdgePier's observation
that P2P image distribution at the edge wins by splitting images into
pieces served by many holders), and the per-chunk schedule is re-made
as conditions change (continuous reasoning: seeder departure, upload
saturation, and staleness re-resolve one chunk, not one layer).

Components
----------
:class:`ChunkMap`
    Deterministic fixed-size chunking of one layer.  Chunks are
    digest-addressed (``sha256`` over layer digest × span), so the same
    layer chunks identically on every device and registry.
:class:`ChunkStore` / :class:`ChunkLedger`
    Per-device partial-layer tracking riding the
    :class:`~repro.registry.cache.ImageCache` reserve→commit path: a
    chunked download reserves the whole layer (capacity held, digest
    invisible), then commits chunk-by-chunk into the store — and every
    committed chunk is published to the swarm-wide ledger, making the
    device a *partial seeder* other pulls can fetch that chunk from
    before the layer is complete.  Only when every chunk has landed is
    the cache entry committed (the layer becomes a normal full replica
    in the peer index).
:class:`ChunkSwarmPlanner`
    Turns the per-layer source choice into a per-chunk schedule:
    **rarest-first** chunk selection across full holders (discovery
    view, verified against ground truth) and partial holders (ledger),
    up to ``max_parallel`` concurrent chunk transfers per layer through
    the shared :class:`~repro.sim.transfers.TransferEngine`, per-chunk
    re-resolution on :class:`~repro.sim.transfers.TransferCancelled` /
    :class:`~repro.sim.transfers.UploadBudgetExceeded` (replacing the
    single-source path's whole-layer restart), and an **endgame** that
    re-requests straggling peer-sourced chunks from the registry tier
    (duplicated bytes are metered, never silent).

Determinism
-----------
Rarest-first ties are broken by a seeded stable hash over
``(seed, layer digest, chunk index)`` and finally by index, so a chunk
schedule is a pure function of the seed and the observable swarm state
— independent of set iteration order or hash randomisation.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    TYPE_CHECKING,
)

from ..model.units import bytes_to_mb
from ..sim.transfers import (
    Transfer,
    TransferCancelled,
    TransferEngine,
    UploadBudgetExceeded,
)
from .base import RegistryError
from .cache import CacheEvent, EvictionRecord, ImageCache
from .digest import DIGEST_PREFIX

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .base import Registry
    from .p2p import PeerSwarm

#: Default chunk size (decimal MB convention, like image sizes): large
#: enough that per-chunk latency does not dominate, small enough that a
#: typical 100–800 MB layer splits into double-digit chunk counts.
DEFAULT_CHUNK_SIZE_BYTES = 32_000_000


@dataclass(frozen=True)
class Chunk:
    """One fixed-size span of a layer, digest-addressed."""

    layer_digest: str
    index: int
    offset: int
    size_bytes: int
    digest: str

    @property
    def end(self) -> int:
        return self.offset + self.size_bytes


class ChunkMap:
    """Deterministic fixed-size chunking of one layer.

    Chunks tile ``[0, layer_size_bytes)`` exactly: every chunk but the
    last is ``chunk_size_bytes`` long, the last carries the remainder.
    A zero-byte layer still maps to one zero-byte chunk so every layer
    has at least one observable completion.
    """

    def __init__(
        self,
        layer_digest: str,
        layer_size_bytes: int,
        chunk_size_bytes: int = DEFAULT_CHUNK_SIZE_BYTES,
    ) -> None:
        if layer_size_bytes < 0:
            raise ValueError(f"negative layer size: {layer_size_bytes}")
        if chunk_size_bytes <= 0:
            raise ValueError(f"chunk size must be > 0, got {chunk_size_bytes}")
        self.layer_digest = layer_digest
        self.layer_size_bytes = layer_size_bytes
        self.chunk_size_bytes = chunk_size_bytes
        chunks: List[Chunk] = []
        offset = 0
        index = 0
        while offset < layer_size_bytes or index == 0:
            size = min(chunk_size_bytes, layer_size_bytes - offset)
            chunks.append(
                Chunk(
                    layer_digest=layer_digest,
                    index=index,
                    offset=offset,
                    size_bytes=size,
                    digest=_chunk_digest(layer_digest, index, offset, size),
                )
            )
            offset += size
            index += 1
        self.chunks: Tuple[Chunk, ...] = tuple(chunks)

    @property
    def n_chunks(self) -> int:
        return len(self.chunks)

    def chunk(self, index: int) -> Chunk:
        return self.chunks[index]

    def __len__(self) -> int:
        return len(self.chunks)

    def __iter__(self):
        return iter(self.chunks)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ChunkMap({self.layer_digest[:19]}…, {self.layer_size_bytes} B, "
            f"{self.n_chunks} × {self.chunk_size_bytes} B)"
        )


def _chunk_digest(layer_digest: str, index: int, offset: int, size: int) -> str:
    """Content-style address of one chunk (layer digest × span)."""
    h = hashlib.sha256(
        f"{layer_digest}:{index}:{offset}:{size}".encode("utf-8")
    ).hexdigest()
    return DIGEST_PREFIX + h


class ChunkLedger:
    """Swarm-wide map of *partial* layer holdings.

    ``(layer digest, chunk index) → devices`` holding that chunk of a
    layer they have **not finished** downloading.  Full replicas live
    in the :class:`~repro.registry.p2p.PeerIndex` (they implicitly hold
    every chunk); the ledger covers only the in-flight window where a
    device can already seed the chunks it has.  Entries are ground
    truth — :class:`ChunkStore` writes them synchronously on chunk
    commit and drops them on finish/abort — so partial holders need no
    staleness verification.
    """

    def __init__(self) -> None:
        # layer digest -> chunk index -> set of devices
        self._chunks: Dict[str, Dict[int, Set[str]]] = {}
        # device -> layer digests it partially holds (for drops)
        self._by_device: Dict[str, Set[str]] = {}

    def add_chunk(self, device: str, layer_digest: str, index: int) -> None:
        self._chunks.setdefault(layer_digest, {}).setdefault(index, set()).add(
            device
        )
        self._by_device.setdefault(device, set()).add(layer_digest)

    def drop_layer(self, device: str, layer_digest: str) -> None:
        """Forget ``device``'s partial holding of ``layer_digest``."""
        per_layer = self._chunks.get(layer_digest)
        if per_layer is not None:
            for index in [i for i, holders in per_layer.items() if device in holders]:
                per_layer[index].discard(device)
                if not per_layer[index]:
                    del per_layer[index]
            if not per_layer:
                del self._chunks[layer_digest]
        layers = self._by_device.get(device)
        if layers is not None:
            layers.discard(layer_digest)
            if not layers:
                del self._by_device[device]

    def drop_device(self, device: str) -> None:
        """Forget every partial holding of ``device`` (departure)."""
        for layer_digest in sorted(self._by_device.get(device, set())):
            self.drop_layer(device, layer_digest)

    def chunk_holders(self, layer_digest: str, index: int) -> FrozenSet[str]:
        """Partial holders of one chunk (full replicas not included)."""
        return frozenset(self._chunks.get(layer_digest, {}).get(index, ()))

    def partial_layers(self, device: str) -> FrozenSet[str]:
        return frozenset(self._by_device.get(device, ()))

    def tracked_layers(self) -> List[str]:
        return sorted(self._chunks)


class ChunkStore:
    """One device's partial layers, riding the cache reserve→commit path.

    Lifecycle per layer::

        begin_layer(cmap)      cache.reserve(layer)  — capacity held,
                               digest invisible to the peer index
        commit_chunk(l, i)     chunk recorded + published to the ledger
                               (the device becomes a partial seeder)
        finish_layer(l)        every chunk landed: partial record drops,
                               cache.commit(layer) — the layer becomes a
                               normal full replica (peer-index "add")
        abort_layer(l)         partial record drops, cache.release(layer)

    The store subscribes to its cache: if the layer lands through some
    other path mid-download (an analytic ``add()`` absorbing the
    reservation) or leaves it (``clear()``), the partial record and its
    ledger entries are dropped so the ledger never advertises chunks
    the swarm cannot rely on.
    """

    def __init__(self, device: str, cache: ImageCache, ledger: ChunkLedger) -> None:
        self.device = device
        self.cache = cache
        self.ledger = ledger
        self._partial: Dict[str, Set[int]] = {}
        self._maps: Dict[str, ChunkMap] = {}
        cache.subscribe(self._on_cache_event)

    def _on_cache_event(self, event: CacheEvent) -> None:
        if event.digest in self._partial:
            # The layer's presence changed underneath the download
            # (instant add absorbed the reservation, or clear/remove
            # dropped it): the partial record is moot either way.
            self._drop(event.digest)

    def _drop(self, layer_digest: str) -> None:
        self._partial.pop(layer_digest, None)
        self._maps.pop(layer_digest, None)
        self.ledger.drop_layer(self.device, layer_digest)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def begin_layer(self, cmap: ChunkMap) -> List[EvictionRecord]:
        """Reserve the layer's bytes and open its chunk record."""
        if cmap.layer_digest in self._partial:
            raise RegistryError(
                f"chunked download of {cmap.layer_digest} already in "
                f"flight on {self.device!r}"
            )
        evictions = self.cache.reserve(cmap.layer_digest, cmap.layer_size_bytes)
        self._partial[cmap.layer_digest] = set()
        self._maps[cmap.layer_digest] = cmap
        return evictions

    def commit_chunk(self, layer_digest: str, index: int) -> bool:
        """Record one landed chunk; publishes it to the ledger.

        Returns True when the chunk was newly recorded.  Committing the
        same chunk twice is a scheduling bug (the exactly-once
        reassembly invariant) and raises; committing into a layer whose
        record was absorbed by an out-of-band insert is a no-op.
        """
        held = self._partial.get(layer_digest)
        if held is None:
            return False  # absorbed/aborted out from under the download
        cmap = self._maps[layer_digest]
        if not 0 <= index < cmap.n_chunks:
            raise ValueError(
                f"chunk index {index} out of range for {layer_digest} "
                f"({cmap.n_chunks} chunks)"
            )
        if index in held:
            raise RegistryError(
                f"chunk {index} of {layer_digest} committed twice on "
                f"{self.device!r}"
            )
        held.add(index)
        self.ledger.add_chunk(self.device, layer_digest, index)
        return True

    def finish_layer(self, layer_digest: str) -> bool:
        """All chunks landed: commit the cache entry (reserve→commit).

        The partial record is cleared *before* the cache commit so the
        ledger stops advertising partial chunks at the same instant the
        peer index starts advertising the full replica.  Returns the
        cache's commit result (False when the reservation was already
        absorbed by an instant insert).
        """
        held = self._partial.get(layer_digest)
        if held is not None:
            cmap = self._maps[layer_digest]
            missing = set(range(cmap.n_chunks)) - held
            if missing:
                raise RegistryError(
                    f"finish_layer({layer_digest}) on {self.device!r} with "
                    f"{len(missing)} chunk(s) missing: {sorted(missing)[:8]}"
                )
            self._drop(layer_digest)
        return self.cache.commit(layer_digest)

    def abort_layer(self, layer_digest: str) -> None:
        """Cancelled download: drop partial chunks, release the bytes."""
        self._drop(layer_digest)
        self.cache.release(layer_digest)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def has_chunk(self, layer_digest: str, index: int) -> bool:
        return index in self._partial.get(layer_digest, ())

    def chunk_indices(self, layer_digest: str) -> FrozenSet[int]:
        return frozenset(self._partial.get(layer_digest, ()))

    def missing_chunks(self, layer_digest: str) -> List[int]:
        cmap = self._maps.get(layer_digest)
        if cmap is None:
            return []
        return sorted(set(range(cmap.n_chunks)) - self._partial[layer_digest])

    def is_partial(self, layer_digest: str) -> bool:
        return layer_digest in self._partial


@dataclass
class ChunkFetchOutcome:
    """What one chunked layer fetch produced (consumed by the facade).

    ``bytes_by_source`` keys are ``(kind, source)`` with kind one of
    ``"peer"`` / ``"registry"`` — the facade converts them to
    :class:`~repro.registry.p2p.LayerSource` entries (kept as strings
    here to avoid an import cycle with :mod:`repro.registry.p2p`).
    """

    layer_digest: str
    seconds: float = 0.0
    evictions: List[EvictionRecord] = field(default_factory=list)
    bytes_by_source: Dict[Tuple[str, str], int] = field(default_factory=dict)
    stale_misses: int = 0
    wasted_bytes: int = 0
    endgame_dupes: int = 0
    chunk_transfers: int = 0
    #: True when the layer landed without moving bytes (it was already
    #: present / absorbed by a concurrent insert before any transfer).
    local: bool = False


class _LayerFetch:
    """Shared mutable state of one layer's chunk workers."""

    __slots__ = (
        "cmap",
        "pending",
        "done",
        "inflight",
        "dup_requested",
        "outcome",
        "aborted",
    )

    def __init__(self, cmap: ChunkMap, outcome: ChunkFetchOutcome) -> None:
        self.cmap = cmap
        self.pending: Set[int] = set(range(cmap.n_chunks))
        self.done: Set[int] = set()
        # chunk index -> list of (transfer, kind, source) currently on
        # the wire for it (more than one only during endgame).
        self.inflight: Dict[int, List[Tuple[Transfer, str, str]]] = {}
        self.dup_requested: Set[int] = set()
        self.outcome = outcome
        self.aborted = False

    @property
    def complete(self) -> bool:
        return len(self.done) == self.cmap.n_chunks


class ChunkSwarmPlanner:
    """Per-chunk scheduling across every holder the swarm can see.

    One planner serves one :class:`~repro.registry.p2p.P2PRegistry`
    facade.  It owns the swarm-wide :class:`ChunkLedger`, one
    :class:`ChunkStore` per participating device, and the endgame /
    rarest-first policy knobs.

    Parameters
    ----------
    swarm / registries:
        Topology + discovery (holders of full replicas) and the
        preference-ordered registry fallback chain (regional → hub).
    chunk_size_bytes:
        The unit of transfer.
    max_parallel:
        Concurrent chunk transfers per layer fetch (the swarming
        window).  1 degenerates to sequential chunking.
    seed:
        Seeds the rarest-first tie-break (stable, deterministic).
    endgame:
        When True, straggling peer-sourced chunks are re-requested
        from the registry tier once no unclaimed chunks remain; the
        duplicate bytes are metered in ``endgame_dupes`` /
        ``wasted_bytes``.
    use_peers:
        False restricts every chunk to the registry tier (mirrors
        ``PullPlanner(use_peers=False)`` — the peer-less baselines
        must stay peer-less when chunked).
    """

    def __init__(
        self,
        swarm: "PeerSwarm",
        registries: Sequence["Registry"],
        chunk_size_bytes: int = DEFAULT_CHUNK_SIZE_BYTES,
        max_parallel: int = 4,
        seed: int = 0,
        endgame: bool = True,
        use_peers: bool = True,
    ) -> None:
        if max_parallel < 1:
            raise ValueError(f"max_parallel must be >= 1, got {max_parallel}")
        if chunk_size_bytes <= 0:
            raise ValueError(
                f"chunk_size_bytes must be > 0, got {chunk_size_bytes}"
            )
        self.swarm = swarm
        self.registries = list(registries)
        self.chunk_size_bytes = chunk_size_bytes
        self.max_parallel = max_parallel
        self.seed = seed
        self.endgame = endgame
        self.use_peers = use_peers
        self.ledger = ChunkLedger()
        self._stores: Dict[str, ChunkStore] = {}
        self._inflight_layers: Dict[Tuple[str, str], object] = {}
        # planner-wide diagnostics
        self.chunk_transfers = 0
        self.endgame_dupes = 0
        self.wasted_bytes = 0
        #: Optional telemetry trace sink (duck-typed, None = off):
        #: receives one ``chunk.endgame`` record per duplicate start.
        self.trace = None

    # ------------------------------------------------------------------
    # stores and join events
    # ------------------------------------------------------------------
    def store_for(self, device: str, cache: ImageCache) -> ChunkStore:
        store = self._stores.get(device)
        if store is None:
            store = ChunkStore(device, cache, self.ledger)
            self._stores[device] = store
        elif store.cache is not cache:
            raise ValueError(
                f"device {device!r} re-registered with a different cache"
            )
        return store

    def inflight_event(self, device: str, layer_digest: str):
        """The completion event of an in-flight chunked fetch of
        ``layer_digest`` onto ``device`` (None when there is none).
        Concurrent pulls wait on it instead of double-fetching."""
        return self._inflight_layers.get((device, layer_digest))

    # ------------------------------------------------------------------
    # rarest-first selection
    # ------------------------------------------------------------------
    def _tiebreak(self, device: str, layer_digest: str, index: int) -> int:
        """Seeded stable tie-break for equal-rarity chunks.

        Salted by the *claiming device* so equally-rare chunks are
        claimed in a different order on every device — without this a
        cold wave moves in lockstep (every device fetches the same
        chunk at the same instant) and nobody ever holds a chunk its
        neighbours lack, which is exactly the dispersion BitTorrent's
        random-first/rarest-first policy exists to create.  Still a
        pure function of ``(seed, device, layer, index)``: runs are
        reproducible and the ordering is stable under set iteration.
        """
        h = hashlib.sha256(
            f"{self.seed}:{device}:{layer_digest}:{index}".encode("utf-8")
        ).digest()
        return int.from_bytes(h[:8], "big")

    def _full_holders(self, device: str, layer_digest: str) -> FrozenSet[str]:
        """Full-replica holders as ``device`` sees them (index-free)."""
        return self.swarm.discovery.view(device, layer_digest) - {device}

    def availability(self, device: str, layer_digest: str, index: int) -> int:
        """Holders of one chunk as ``device`` can see them: full
        replicas in the discovery view (unverified — this is a count
        for ordering, verification happens at fetch time) plus partial
        holders in the ledger."""
        full = self._full_holders(device, layer_digest)
        partial = self.ledger.chunk_holders(layer_digest, index) - {device}
        return len(full | partial)

    def rarest_first(
        self, device: str, cmap: ChunkMap, pending: Optional[Set[int]] = None
    ) -> List[int]:
        """Pending chunks ordered rarest-first (seeded stable ties).

        Public so the ordering itself is testable without running a
        simulation: sorted by (availability, seeded hash, index).
        """
        indices = (
            sorted(pending) if pending is not None else range(cmap.n_chunks)
        )
        # One discovery lookup per ordering, not per index: the full-
        # holder set does not depend on the chunk.
        full = self._full_holders(device, cmap.layer_digest)
        layer = cmap.layer_digest
        return sorted(
            indices,
            key=lambda i: (
                len(full | (self.ledger.chunk_holders(layer, i) - {device})),
                self._tiebreak(device, layer, i),
                i,
            ),
        )

    def _next_chunk(self, st: _LayerFetch, device: str) -> Optional[int]:
        if not st.pending:
            return None
        layer = st.cmap.layer_digest
        full = self._full_holders(device, layer)
        best = min(
            st.pending,
            key=lambda i: (
                len(full | (self.ledger.chunk_holders(layer, i) - {device})),
                self._tiebreak(device, layer, i),
                i,
            ),
        )
        st.pending.discard(best)
        return best

    # ------------------------------------------------------------------
    # endgame
    # ------------------------------------------------------------------
    def _endgame_candidate(
        self, st: _LayerFetch, device: str, engine: TransferEngine
    ) -> Optional[int]:
        """A straggling peer-sourced chunk worth duplicating.

        Eligible: in flight from a peer, no duplicate issued yet, and
        the registry tier's estimated fetch is meaningfully faster than
        the transfer's remaining time at its current rate.  Returns the
        longest-running eligible chunk (stable tie-break by index).
        """
        candidates: List[Tuple[float, int]] = []
        for index, entries in st.inflight.items():
            if index in st.done or index in st.dup_requested:
                continue
            live = [
                t
                for t, kind, _s in entries
                if kind == "peer"
                and t.completed_s is None
                and not t.cancelled
            ]
            if not live:
                # No live peer transfer: either registry-sourced (the
                # endgame has nothing faster to offer) or already
                # finished and merely awaiting its worker's resume.
                continue
            transfer = live[0]
            if transfer.rate_mbps > 0:
                # engine.remaining_mb projects lazily-settled progress
                # forward to the current clock (incremental mode keeps
                # transfer.remaining_mb fresh only per dirty closure).
                remaining_s = (
                    engine.remaining_mb(transfer) * 8.0 / transfer.rate_mbps
                )
            else:
                # Still in its connection-latency phase: fall back to
                # the payload over the path's bottleneck capacity.
                remaining_s = transfer.lower_bound_s
            registry_s = self._best_registry_seconds(
                st.cmap.chunk(index), device, engine
            )
            if registry_s is None or registry_s >= 0.8 * remaining_s:
                continue
            candidates.append((transfer.requested_s, index))
        if not candidates:
            return None
        return min(candidates)[1]

    def _best_registry_seconds(
        self, chunk: Chunk, device: str, engine: TransferEngine
    ) -> Optional[float]:
        network = self.swarm.network
        best: Optional[float] = None
        size_mb = bytes_to_mb(chunk.size_bytes)
        for registry in self.registries:
            if chunk.layer_digest not in registry.blobs:
                continue
            if not network.has_registry_channel(registry.name, device):
                continue
            seconds = engine.estimated_transfer_s(
                registry.name, device, size_mb, src_is_registry=True
            )
            if best is None or seconds < best:
                best = seconds
        return best

    # ------------------------------------------------------------------
    # per-chunk source resolution
    # ------------------------------------------------------------------
    def _resolve_chunk(
        self,
        st: _LayerFetch,
        chunk: Chunk,
        device: str,
        excluded: Set[str],
        registry_only: bool = False,
    ) -> Optional[Tuple[str, str]]:
        """Cheapest verified source of one chunk right now.

        Returns ``(kind, source)`` with kind ``"peer"``/``"registry"``,
        or None when nothing can serve the chunk.  Full-replica claims
        from the discovery view are verified against the ground-truth
        index (stale entries metered and excluded, like the
        single-source path); partial holders come from the ledger,
        which is ground truth, and are only required to still be swarm
        members.
        """
        network = self.swarm.network
        layer = chunk.layer_digest
        size_mb = bytes_to_mb(chunk.size_bytes)
        best_peer: Optional[Tuple[float, str]] = None
        if self.use_peers and not registry_only:
            partial = self.ledger.chunk_holders(layer, chunk.index)
            candidates: Set[str] = set()
            for holder in self.swarm.discovery.view(device, layer):
                if holder != device and holder not in excluded:
                    candidates.add(holder)
            for holder in partial:
                if (
                    holder != device
                    and holder not in excluded
                    and self.swarm.is_member(holder)
                ):
                    candidates.add(holder)
            while candidates:
                peer = self.swarm._fastest(candidates, device)
                if peer is None:
                    break
                if peer not in partial and not self.swarm.verify_holder(
                    device, peer, layer
                ):
                    st.outcome.stale_misses += 1
                    candidates.discard(peer)
                    continue
                seconds = network.device_channel(peer, device).transfer_time_s(
                    size_mb
                )
                best_peer = (seconds, peer)
                break
        best: Optional[Tuple[float, str, str]] = None
        if best_peer is not None:
            best = (best_peer[0], "peer", best_peer[1])
        for registry in self.registries:
            if layer not in registry.blobs:
                continue
            if not network.has_registry_channel(registry.name, device):
                continue
            seconds = network.registry_channel(
                registry.name, device
            ).transfer_time_s(size_mb)
            if best is None or seconds < best[0]:
                best = (seconds, "registry", registry.name)
        if best is None:
            return None
        return best[1], best[2]

    # ------------------------------------------------------------------
    # the chunked layer fetch (a DES process)
    # ------------------------------------------------------------------
    def fetch_layer(
        self,
        device: str,
        cache: ImageCache,
        layer_digest: str,
        layer_size_bytes: int,
        engine: TransferEngine,
        meter_registry: Optional[Callable[[str], None]] = None,
    ):
        """Generator fetching one layer chunk-by-chunk onto ``device``.

        The caller yields from it inside a simulator process; the
        return value is a :class:`ChunkFetchOutcome`.  The layer is
        reserved up front (capacity held), chunks land in parallel from
        up to ``max_parallel`` sources, and the cache entry commits
        only when every chunk has.  On failure (no source can serve a
        chunk, or registry metering raises) the reservation is released
        and the error propagates — exactly the single-source contract.
        """
        sim = engine.sim
        outcome = ChunkFetchOutcome(layer_digest=layer_digest)
        store = self.store_for(device, cache)
        cmap = ChunkMap(layer_digest, layer_size_bytes, self.chunk_size_bytes)
        outcome.evictions.extend(store.begin_layer(cmap))
        st = _LayerFetch(cmap, outcome)
        done_event = sim.event()
        self._inflight_layers[(device, layer_digest)] = done_event
        started_s = sim.now
        try:
            workers = [
                sim.process(
                    self._worker(st, store, device, cache, engine, meter_registry)
                )
                for _ in range(min(self.max_parallel, cmap.n_chunks))
            ]
            yield sim.all_of(workers)
        except BaseException:
            st.aborted = True
            engine.cancel_many(
                (
                    transfer
                    for entries in list(st.inflight.values())
                    for transfer, _kind, _source in list(entries)
                ),
                reason="chunked fetch aborted",
            )
            store.abort_layer(layer_digest)
            raise
        finally:
            del self._inflight_layers[(device, layer_digest)]
            if not done_event.triggered:
                done_event.succeed(None)
        store.finish_layer(layer_digest)
        outcome.seconds = sim.now - started_s
        outcome.local = not outcome.bytes_by_source
        self.chunk_transfers += outcome.chunk_transfers
        self.endgame_dupes += outcome.endgame_dupes
        self.wasted_bytes += outcome.wasted_bytes
        return outcome

    def _worker(
        self,
        st: _LayerFetch,
        store: ChunkStore,
        device: str,
        cache: ImageCache,
        engine: TransferEngine,
        meter_registry: Optional[Callable[[str], None]],
    ):
        """One chunk-slot worker: claim → resolve → transfer → commit,
        looping until no pending chunk and no endgame work remains."""
        sim = engine.sim
        layer = st.cmap.layer_digest
        while True:
            if st.aborted:
                return
            if layer in cache:
                # The layer landed through another path (instant insert
                # absorbed the reservation): nothing left to fetch.
                st.pending.clear()
                return
            duplicate = False
            index = self._next_chunk(st, device)
            if index is None:
                if not self.endgame or st.complete:
                    return
                index = self._endgame_candidate(st, device, engine)
                if index is None:
                    return
                duplicate = True
                st.dup_requested.add(index)
            chunk = st.cmap.chunk(index)
            excluded: Set[str] = set()
            while True:
                if st.aborted:
                    return
                if index in st.done:
                    break  # endgame race already resolved this chunk
                resolved = self._resolve_chunk(
                    st, chunk, device, excluded, registry_only=duplicate
                )
                if resolved is None:
                    if duplicate:
                        break  # no registry can duplicate it; fine
                    raise RegistryError(
                        f"chunk {index} of layer {layer} unreachable from "
                        f"{device!r}: no peer or registry source"
                    )
                kind, source = resolved
                try:
                    if kind == "peer":
                        transfer = engine.start(
                            source, device, chunk.size_bytes, digest=chunk.digest
                        )
                    else:
                        if meter_registry is not None:
                            try:
                                meter_registry(source)
                            except Exception:
                                if duplicate:
                                    # A purely speculative endgame copy
                                    # must never sink a pull the peer
                                    # path is already completing: give
                                    # the duplicate up, keep waiting.
                                    break
                                # A *required* registry chunk: the
                                # metering failure (hub rate limiting)
                                # propagates, aborting the fetch like
                                # the single-source path's would.
                                raise
                        transfer = engine.start(
                            source,
                            device,
                            chunk.size_bytes,
                            src_is_registry=True,
                            # An endgame duplicate deliberately races a
                            # live transfer for the same chunk; starting
                            # it digest-less keeps it out of the inbound
                            # index (which maps each (dst, digest) to
                            # exactly one joinable transfer).
                            digest="" if duplicate else chunk.digest,
                        )
                except UploadBudgetExceeded:
                    excluded.add(source)
                    continue
                st.outcome.chunk_transfers += 1
                if duplicate:
                    st.outcome.endgame_dupes += 1
                    if self.trace is not None:
                        self.trace.record(
                            engine.sim.now, "chunk.endgame", device,
                            layer=layer, chunk=index, source=source,
                        )
                entry = (transfer, kind, source)
                st.inflight.setdefault(index, []).append(entry)
                try:
                    yield transfer.done
                    completed = True
                except TransferCancelled:
                    completed = False
                entries = st.inflight.get(index)
                if entries is not None:
                    try:
                        entries.remove(entry)
                    except ValueError:  # pragma: no cover - defensive
                        pass
                    if not entries:
                        st.inflight.pop(index, None)
                if not completed:
                    # Seeder departed / duplicate lost the race / fetch
                    # aborted: the bytes already moved are waste either
                    # way — meter them, then re-resolve unless done.
                    st.outcome.wasted_bytes += transfer.moved_bytes
                    if st.aborted:
                        return
                    if index in st.done:
                        break
                    excluded.add(source)
                    continue
                if st.aborted:
                    return
                if index in st.done:
                    # Both the original and its endgame duplicate
                    # finished in the same engine wake: the second
                    # payload is pure duplication.
                    st.outcome.wasted_bytes += chunk.size_bytes
                    break
                st.done.add(index)
                store.commit_chunk(layer, index)
                key = (kind, source)
                st.outcome.bytes_by_source[key] = (
                    st.outcome.bytes_by_source.get(key, 0) + chunk.size_bytes
                )
                # First completion wins: any rival transfer still on
                # the wire for this chunk is duplication — cancel it so
                # its bandwidth frees now (its worker meters the waste).
                for rival, _k, _s in list(st.inflight.get(index, [])):
                    engine.cancel(
                        rival, reason="chunk completed via faster source"
                    )
                break
