"""Pluggable peer discovery: how devices find layer replicas.

The P2P tier needs an answer to one question — *which peers hold this
digest, as far as this device knows?* — and everything downstream
(:class:`~repro.registry.p2p.PullPlanner`, the time-resolved pull
process, the :class:`~repro.registry.p2p.AdaptiveReplicator`) consumes
that answer.  This module extracts the question into a protocol with
two implementations:

:class:`OmniscientDiscovery`
    Wraps the ground-truth :class:`~repro.registry.p2p.PeerIndex`:
    every device sees every committed replica instantly and exactly.
    This is the historical behaviour and stays the default — outputs
    are bit-for-bit identical to the pre-refactor code.

:class:`GossipDiscovery`
    Per-device **partial views** converging via periodic anti-entropy
    exchanges (push-pull, seeded fanout), scheduled as ordinary
    sim-engine processes.  Views lag reality by up to a gossip period
    and survive holder departures, so *staleness is a first-class
    failure mode*: a view entry that resolves to an evicted or
    departed holder fails verification against the ground-truth index,
    the miss is metered, and the pull falls back through the registry
    chain (regional → hub).

Versioning
----------
Gossip records are ``(incarnation, seq, present)`` triples per
``(holder, digest)``.  ``seq`` is the holder's own monotone event
counter (every cache add/evict/remove bumps it), ``incarnation`` bumps
each time the holder re-joins the swarm — so a device re-joining with
a stale cache cannot be shadowed by tombstones from its previous life.
Merges keep the strictly newer record; on a version tie the *absent*
record wins, which makes local stale-miss suppression sticky (a viewer
that observed a holder to be stale never un-observes it from
equally-old gossip).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple, TYPE_CHECKING

import numpy as np

from .cache import CacheEvent, ImageCache

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.engine import Simulator
    from .p2p import PeerIndex


@dataclass(frozen=True)
class ViewRecord:
    """One gossip fact: holder × digest at a version."""

    incarnation: int
    seq: int
    present: bool

    @property
    def version(self) -> Tuple[int, int]:
        return (self.incarnation, self.seq)


def _newer(incoming: ViewRecord, current: Optional[ViewRecord]) -> bool:
    """Merge rule: strictly newer version wins; ties keep *absent*."""
    if current is None:
        return True
    if incoming.version != current.version:
        return incoming.version > current.version
    return current.present and not incoming.present


class DiscoveryBackend:
    """The replica-lookup surface of the P2P tier.

    ``authoritative`` declares whether :meth:`view` is ground truth: an
    authoritative backend whose answer fails verification is an index
    coherence *bug* (raise), a non-authoritative one has merely served
    a stale entry (meter the miss, fall back).
    """

    authoritative = True

    #: Total stale view entries that failed holder verification.
    stale_misses = 0

    #: Name the management plane (the replicator) verifies as — gossip
    #: backends key their observer view on it.
    observer = "__management__"

    # -- membership ----------------------------------------------------
    def on_join(self, device: str, cache: ImageCache, region: str) -> None:
        """``device`` joined the swarm with ``cache``."""

    def on_leave(self, device: str) -> None:
        """``device`` departed (its cache may return later, stale)."""

    # -- lookups -------------------------------------------------------
    def view(self, viewer: str, digest: str) -> FrozenSet[str]:
        """Holders of ``digest`` as seen *by ``viewer``* (may be stale)."""
        raise NotImplementedError

    def management_view(self, digest: str) -> FrozenSet[str]:
        """Holders as seen by the management plane (the replicator)."""
        raise NotImplementedError

    def size_of(self, digest: str) -> Optional[int]:
        """Known size of ``digest`` in bytes (None if never observed)."""
        raise NotImplementedError

    # -- staleness feedback --------------------------------------------
    def record_miss(self, viewer: str, holder: str, digest: str) -> None:
        """``viewer`` verified ``holder`` and found the entry stale."""

    # -- wiring --------------------------------------------------------
    def bind(self, sim: "Simulator") -> None:
        """Attach the simulator that schedules this backend's processes."""


class OmniscientDiscovery(DiscoveryBackend):
    """Perfect, instantaneous global knowledge (the historical model).

    Wraps the swarm's ground-truth :class:`PeerIndex`; every viewer —
    devices and the management plane alike — sees exactly the committed
    replica set.  Verification can never fail, so a failed verification
    against this backend raises (index incoherence is a bug).
    """

    authoritative = True

    def __init__(self, index: "PeerIndex") -> None:
        self.index = index

    def view(self, viewer: str, digest: str) -> FrozenSet[str]:
        # The live holder set, not a snapshot: every caller consumes a
        # view immediately (set algebra, len, iteration), and at swarm
        # scale per-lookup copies of a hot layer's thousand-holder set
        # would dominate the pull path.
        return self.index.holders_view(digest)

    def management_view(self, digest: str) -> FrozenSet[str]:
        return self.index.holders_view(digest)

    def size_of(self, digest: str) -> Optional[int]:
        return self.index.size_of(digest)


class GossipDiscovery(DiscoveryBackend):
    """Partial views converging via seeded push-pull anti-entropy.

    Every ``period_s`` simulated seconds each participant (every swarm
    member plus one management-plane ``observer``) picks ``fanout``
    random partners and exchanges its knowledge — its own first-hand
    cache state plus everything second-hand it has heard.  Merging
    follows the versioning rules in the module docstring; per digest a
    view keeps at most ``view_cap`` *present* entries (the freshest
    ones), which is what makes the views partial rather than
    eventually-global.

    The backend is **not authoritative**: callers must verify a chosen
    holder against ground truth and report failures via
    :meth:`record_miss`, which suppresses the stale entry locally and
    increments :attr:`stale_misses`.
    """

    authoritative = False

    def __init__(
        self,
        sim: Optional["Simulator"] = None,
        fanout: int = 2,
        period_s: float = 30.0,
        view_cap: int = 8,
        seed: int = 0,
        observer: str = "__management__",
        latency_s: float = 0.0,
        exchange: str = "push-pull",
        loss_rate: float = 0.0,
    ) -> None:
        if fanout < 1:
            raise ValueError(f"fanout must be >= 1, got {fanout}")
        if period_s <= 0:
            raise ValueError(f"period_s must be > 0, got {period_s}")
        if view_cap < 1:
            raise ValueError(f"view_cap must be >= 1, got {view_cap}")
        if latency_s < 0:
            raise ValueError(f"latency_s must be >= 0, got {latency_s}")
        if exchange not in ("push-pull", "digest-summary"):
            raise ValueError(
                f"unknown exchange {exchange!r}; expected 'push-pull' or "
                f"'digest-summary'"
            )
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(
                f"loss_rate must be in [0, 1), got {loss_rate}"
            )
        self.sim = sim
        self.fanout = fanout
        self.period_s = period_s
        self.view_cap = view_cap
        #: Per-pair metadata transport latency: exchanged payloads land
        #: this many simulated seconds after the round fires (0 =
        #: instantaneous, the historical model).  Needs a bound
        #: simulator; synchronous test rounds deliver immediately.
        self.latency_s = latency_s
        #: ``"push-pull"`` ships full payloads; ``"digest-summary"``
        #: ships only records strictly newer than what the receiver
        #: already holds (identical merge result, fewer wire records).
        self.exchange = exchange
        #: Probability each *directed* payload of a round is dropped in
        #: transit (seeded).  A lost payload costs nothing on the wire
        #: and merges nothing; anti-entropy re-offers the knowledge
        #: next round, so convergence survives — just slower.
        self.loss_rate = loss_rate
        self.observer = observer
        self._rng = np.random.default_rng(seed)
        # viewer -> digest -> holder -> record (second-hand knowledge;
        # a viewer's knowledge about itself lives in _firsthand only).
        self._views: Dict[str, Dict[str, Dict[str, ViewRecord]]] = {
            observer: {}
        }
        # device -> digest -> record (authoritative self-knowledge).
        self._firsthand: Dict[str, Dict[str, ViewRecord]] = {}
        self._clock: Dict[str, int] = {}
        self._incarnation: Dict[str, int] = {}
        self._caches: Dict[str, ImageCache] = {}
        self._listeners: Dict[str, object] = {}
        self._sizes: Dict[str, int] = {}
        self._process = None
        # diagnostics
        self.rounds = 0
        self.exchanges = 0
        self.stale_misses = 0
        #: Full view records shipped over the metadata plane (both
        #: directions of every exchange) — the wire cost the
        #: digest-summary mode exists to cut.
        self.records_sent = 0
        #: Directed payloads dropped in transit (``loss_rate`` draws).
        self.payloads_lost = 0
        #: Optional telemetry trace sink (duck-typed, None = off):
        #: receives one ``gossip.round`` record per round with that
        #: round's counter deltas.  See :mod:`repro.telemetry`.
        self.trace = None

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def on_join(self, device: str, cache: ImageCache, region: str) -> None:
        if device in self._caches:
            raise ValueError(f"device {device!r} already gossiping")
        if device == self.observer:
            raise ValueError(f"{device!r} collides with the observer name")
        self._incarnation[device] = self._incarnation.get(device, 0) + 1
        self._clock[device] = 0
        self._caches[device] = cache
        self._firsthand[device] = {}
        self._views.setdefault(device, {})

        def listener(event: CacheEvent, _device: str = device) -> None:
            self._on_cache_event(_device, event)

        self._listeners[device] = listener
        cache.subscribe(listener)
        for digest, size in cache.entries():
            self._note_firsthand(device, digest, size, present=True)
        self._ensure_started()

    def on_leave(self, device: str) -> None:
        cache = self._caches.pop(device, None)
        if cache is None:
            raise ValueError(f"device {device!r} not gossiping")
        cache.unsubscribe(self._listeners.pop(device))
        # First-hand state and the device's view die with it; the
        # incarnation counter survives so a re-join outranks any gossip
        # from the previous life.  Other views keep their (now
        # potentially stale) entries about the device — that is the
        # failure mode this backend exists to model.
        del self._firsthand[device]
        del self._clock[device]
        self._views.pop(device, None)

    def _on_cache_event(self, device: str, event: CacheEvent) -> None:
        self._note_firsthand(
            device, event.digest, event.size_bytes, present=(event.kind == "add")
        )

    def _note_firsthand(
        self, device: str, digest: str, size_bytes: int, present: bool
    ) -> None:
        self._clock[device] += 1
        self._firsthand[device][digest] = ViewRecord(
            self._incarnation[device], self._clock[device], present
        )
        if present:
            self._sizes[digest] = size_bytes

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def view(self, viewer: str, digest: str) -> FrozenSet[str]:
        records = self._views.get(viewer, {}).get(digest)
        if not records:
            return frozenset()
        return frozenset(h for h, r in records.items() if r.present)

    def management_view(self, digest: str) -> FrozenSet[str]:
        return self.view(self.observer, digest)

    def size_of(self, digest: str) -> Optional[int]:
        return self._sizes.get(digest)

    def participants(self) -> List[str]:
        return sorted(self._caches) + [self.observer]

    # ------------------------------------------------------------------
    # staleness feedback
    # ------------------------------------------------------------------
    def record_miss(self, viewer: str, holder: str, digest: str) -> None:
        self.stale_misses += 1
        records = self._views.get(viewer, {}).get(digest)
        if records is None:
            return
        current = records.get(holder)
        if current is not None and current.present:
            # Suppress locally at the same version: the tie-breaking
            # merge rule (absent wins ties) keeps the suppression from
            # being revived by equally-old gossip.
            records[holder] = ViewRecord(
                current.incarnation, current.seq, False
            )

    # ------------------------------------------------------------------
    # anti-entropy rounds
    # ------------------------------------------------------------------
    def bind(self, sim: "Simulator") -> None:
        if self.sim is not None and self.sim is not sim and self._process is not None:
            raise ValueError("gossip discovery already bound to another simulator")
        self.sim = sim
        self._ensure_started()

    def _ensure_started(self) -> None:
        if self.sim is not None and self._process is None and self._caches:
            self._process = self.sim.process(self._run())

    def _run(self):
        # Daemon wake-ups: anti-entropy ticks forever but must not keep
        # a horizonless sim.run() from terminating.
        while True:
            yield self.sim.timeout(self.period_s, daemon=True)
            self.run_round()

    def run_round(self) -> None:
        """One synchronous anti-entropy round over all participants.

        Every participant's outgoing payload is snapshotted at round
        start (knowledge received *this* round is forwarded next round
        — one hop per round, the classic synchronous-gossip model),
        then each participant push-pulls with ``fanout`` seeded random
        partners.  Public so tests (and convergence measurements) can
        step rounds without a simulator.
        """
        names = self.participants()
        if len(names) < 2:
            return
        if self.trace is not None:
            sent0 = self.records_sent
            lost0 = self.payloads_lost
            exch0 = self.exchanges
        payloads = {name: self._payload(name) for name in names}
        deliveries: List[Tuple[str, str]] = []  # (receiver, sender)
        for name in names:
            others = [p for p in names if p != name]
            k = min(self.fanout, len(others))
            partners = self._rng.choice(len(others), size=k, replace=False)
            for idx in sorted(int(i) for i in partners):
                partner = others[idx]
                self.exchanges += 1
                deliveries.append((partner, name))
                deliveries.append((name, partner))
        if self.loss_rate > 0 and deliveries:
            # Each directed payload is lost independently.  The draws
            # happen only when loss is configured, so loss_rate=0 runs
            # consume the exact historical RNG stream.
            draws = self._rng.random(len(deliveries))
            kept: List[Tuple[str, str]] = []
            for pair, draw in zip(deliveries, draws):
                if draw < self.loss_rate:
                    self.payloads_lost += 1
                else:
                    kept.append(pair)
            deliveries = kept
        if self.latency_s > 0 and self.sim is not None:
            # Metadata takes time to cross the wire: the whole round's
            # payloads (snapshotted above) land latency_s later, so
            # views lag reality by a period *plus* the transport.
            self.sim.process(self._deliver_later(deliveries, payloads))
        else:
            for receiver, sender in deliveries:
                self._deliver(receiver, payloads[sender])
        self.rounds += 1
        if self.trace is not None:
            # Deltas of this round's wire counters (deferred-latency
            # deliveries land later, so their records count in a later
            # round's delta — the trace mirrors when work happened).
            self.trace.record(
                self.sim.now if self.sim is not None else 0.0,
                "gossip.round", "",
                round=self.rounds,
                records_sent=self.records_sent - sent0,
                payloads_lost=self.payloads_lost - lost0,
                exchanges=self.exchanges - exch0,
            )

    def _deliver_later(self, deliveries, payloads):
        yield self.sim.timeout(self.latency_s, daemon=True)
        for receiver, sender in deliveries:
            self._deliver(receiver, payloads[sender])

    def _deliver(
        self, receiver: str, payload: List[Tuple[str, str, ViewRecord]]
    ) -> None:
        """Apply one directed payload, metering wire records.

        Under ``digest-summary`` only the records strictly newer than
        the receiver's current knowledge cross the wire (the summary
        handshake filters the rest) — the merge result is identical to
        a full push-pull because :meth:`_merge` discards non-newer
        records anyway; only the metered ``records_sent`` differs.
        """
        view = self._views.get(receiver)
        if view is None:
            return  # receiver departed before delivery
        if self.exchange == "digest-summary":
            payload = [
                (holder, digest, record)
                for holder, digest, record in payload
                if holder != receiver
                and _newer(record, view.get(digest, {}).get(holder))
            ]
        self.records_sent += len(payload)
        self._merge(receiver, payload)

    def _exchange(self, a: str, b: str) -> None:
        """One immediate push-pull between ``a`` and ``b`` (tests)."""
        self.exchanges += 1
        payload_a = self._payload(a)
        payload_b = self._payload(b)
        self._deliver(b, payload_a)
        self._deliver(a, payload_b)

    def _payload(self, name: str) -> List[Tuple[str, str, ViewRecord]]:
        """Everything ``name`` knows: first-hand state + its view."""
        out: List[Tuple[str, str, ViewRecord]] = []
        firsthand = self._firsthand.get(name)
        if firsthand is not None:
            for digest, record in firsthand.items():
                out.append((name, digest, record))
        for digest, records in self._views.get(name, {}).items():
            for holder, record in records.items():
                out.append((holder, digest, record))
        return out

    def _merge(
        self, viewer: str, payload: List[Tuple[str, str, ViewRecord]]
    ) -> None:
        view = self._views.get(viewer)
        if view is None:
            return  # viewer departed mid-round
        touched: Set[str] = set()
        for holder, digest, record in payload:
            if holder == viewer:
                continue  # self-knowledge is first-hand only
            records = view.setdefault(digest, {})
            if _newer(record, records.get(holder)):
                records[holder] = record
                touched.add(digest)
        for digest in sorted(touched):
            self._enforce_cap(view[digest])

    def _enforce_cap(self, records: Dict[str, ViewRecord]) -> None:
        """Keep at most ``view_cap`` present and ``view_cap`` absent
        entries per digest (freshest win).

        Capping tombstones too keeps view memory bounded at
        ``2·view_cap`` records per digest under sustained churn; an
        early-dropped tombstone can at worst let an old rumour
        resurface, which the verification path then meters and
        re-suppresses (self-healing).
        """
        for wanted in (True, False):
            matching = [
                (h, r) for h, r in records.items() if r.present is wanted
            ]
            if len(matching) <= self.view_cap:
                continue
            matching.sort(
                key=lambda item: (item[1].version, item[0]), reverse=True
            )
            for holder, _record in matching[self.view_cap:]:
                del records[holder]

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def coverage(self, index: "PeerIndex") -> float:
        """Mean fraction of true holders visible per (member, digest).

        1.0 means every member's view contains every committed replica
        (up to the view cap this only holds when ``view_cap`` exceeds
        the replica count); 0.0 means views are empty.  Digests nobody
        holds are skipped.
        """
        ratios: List[float] = []
        for viewer in self._caches:
            for digest in index.tracked_digests():
                truth = index.holders(digest) - {viewer}
                if not truth:
                    continue
                seen = self.view(viewer, digest) & truth
                want = min(len(truth), self.view_cap)
                ratios.append(len(seen) / want)
        if not ratios:
            return 1.0
        return float(sum(ratios) / len(ratios))

    def view_entries(self, viewer: str) -> int:
        """Total records in ``viewer``'s partial view (cap diagnostics)."""
        return sum(len(r) for r in self._views.get(viewer, {}).values())
