"""The P2P edge tier: devices serving cached layers to each other.

The paper's hybrid design stops at two registry tiers — Docker Hub and
the regional registry.  This module adds the third tier that
registry-starved edge deployments actually build (EdgePier-style):
devices already holding a layer serve it to nearby peers over the
device↔device channels of :class:`~repro.model.network.NetworkModel`,
and a demand-driven replicator proactively spreads hot layers into
under-provisioned regions (continuous-reasoning placement).

Components
----------
:class:`PeerIndex`
    Maps layer digests to the set of device caches currently holding
    them.  Kept coherent with every :class:`~repro.registry.cache.ImageCache`
    through the cache's subscription hook — an eviction on any device
    is reflected in the index before the evicting call returns.
:class:`PeerSwarm`
    The index plus topology knowledge: device regions, peer channel
    lookup, and the pull-demand counters the replicator consumes.
:class:`PullPlanner` / :class:`P2PRegistry`
    Resolve each layer of a pull from the cheapest source — local
    cache → peer → regional registry → Docker Hub — using channel
    bandwidths, and execute the plan against the device cache.
:class:`AdaptiveReplicator`
    A DES process that periodically inspects observed pull demand and
    replicates hot layers to regions holding fewer than a target
    number of replicas, until demand cools and the swarm converges.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    TYPE_CHECKING,
)

from ..model.device import Arch
from ..model.network import NetworkModel
from ..model.units import bytes_to_mb
from ..sim.engine import Simulator
from ..sim.transfers import (
    TransferCancelled,
    TransferEngine,
    UploadBudgetExceeded,
)
from .base import ImageReference, Registry, RegistryError
from .cache import CacheEvent, CacheFull, CacheListener, EvictionRecord, ImageCache
from .chunks import DEFAULT_CHUNK_SIZE_BYTES, ChunkFetchOutcome, ChunkSwarmPlanner
from .discovery import DiscoveryBackend, OmniscientDiscovery
from .manifest import ImageManifest
from .repository import ManifestNotFound

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.churn import ChurnProcess

#: Shared empty holder set for digests nobody holds.
_NO_HOLDERS: FrozenSet[str] = frozenset()


class PeerIndex:
    """Digest → holders map, kept coherent via cache subscriptions.

    The index never mutates caches; it only observes them.  Coherence
    is event-driven: :meth:`register_cache` seeds the index from the
    cache's current entries and subscribes a listener, after which
    every insert/evict/remove/clear on the cache updates the index
    synchronously.
    """

    def __init__(self) -> None:
        self._holders: Dict[str, Set[str]] = {}
        self._sizes: Dict[str, int] = {}
        self._caches: Dict[str, ImageCache] = {}
        self._listeners: Dict[str, CacheListener] = {}

    def register_cache(self, device: str, cache: ImageCache) -> None:
        """Track ``cache`` as ``device``'s; seeds and subscribes."""
        if device in self._caches:
            raise ValueError(f"device {device!r} already registered")
        self._caches[device] = cache

        def listener(event: CacheEvent, _device: str = device) -> None:
            if event.kind == "add":
                self._on_add(_device, event.digest, event.size_bytes)
            else:  # "evict" / "remove"
                self._on_drop(_device, event.digest)

        self._listeners[device] = listener
        cache.subscribe(listener)
        for digest, size in cache.entries():
            self._on_add(device, digest, size)

    def unregister_cache(self, device: str) -> None:
        """Stop tracking ``device`` (departure): unsubscribe and drop
        every holder entry it contributed."""
        cache = self._caches.pop(device, None)
        if cache is None:
            raise ValueError(f"device {device!r} not registered")
        cache.unsubscribe(self._listeners.pop(device))
        for digest in [d for d, h in self._holders.items() if device in h]:
            self._on_drop(device, digest)

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------
    def _on_add(self, device: str, digest: str, size_bytes: int) -> None:
        self._holders.setdefault(digest, set()).add(device)
        self._sizes[digest] = size_bytes

    def _on_drop(self, device: str, digest: str) -> None:
        holders = self._holders.get(digest)
        if holders is None:
            return
        holders.discard(device)
        if not holders:
            del self._holders[digest]
            self._sizes.pop(digest, None)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def holders(self, digest: str) -> FrozenSet[str]:
        """Devices whose cache currently holds ``digest``."""
        return frozenset(self._holders.get(digest, ()))

    def holders_view(self, digest: str) -> FrozenSet[str]:
        """Live holder set for ``digest`` — **read-only**, aliased.

        The hot-path variant of :meth:`holders`: no per-call copy, but
        the result mutates with the index.  Callers must consume it
        immediately (set algebra, iteration) and never store it across
        simulated time; use :meth:`holders` for a stable snapshot.
        """
        return self._holders.get(digest, _NO_HOLDERS)

    def holds(self, device: str, digest: str) -> bool:
        return device in self._holders.get(digest, ())

    def size_of(self, digest: str) -> Optional[int]:
        """Last observed size of ``digest`` (None if nobody holds it)."""
        return self._sizes.get(digest)

    def devices(self) -> List[str]:
        return list(self._caches)

    def cache_of(self, device: str) -> ImageCache:
        return self._caches[device]

    def tracked_digests(self) -> List[str]:
        return list(self._holders)

    def replica_count(self, digest: str) -> int:
        return len(self._holders.get(digest, ()))

    def coherence_violations(self) -> List[str]:
        """Index-vs-cache mismatches (must be empty; used by tests)."""
        problems: List[str] = []
        for device, cache in self._caches.items():
            cached = {d for d, _ in cache.entries()}
            indexed = {d for d, h in self._holders.items() if device in h}
            for digest in sorted(cached - indexed):
                problems.append(f"{device}: {digest} cached but not indexed")
            for digest in sorted(indexed - cached):
                problems.append(f"{device}: {digest} indexed but not cached")
        return problems


class PeerSwarm:
    """A fleet of device caches acting as each other's layer sources.

    Couples the :class:`PeerIndex` to the network topology (which peer
    can reach which device, at what bandwidth), groups devices into
    regions for the replicator, and accumulates the per-region pull
    demand the replicator's continuous reasoning runs on.

    Replica *lookups* go through a pluggable
    :class:`~repro.registry.discovery.DiscoveryBackend`: the default
    :class:`~repro.registry.discovery.OmniscientDiscovery` wraps the
    ground-truth index (every device sees every committed replica,
    the historical behaviour, bit-for-bit), while
    :class:`~repro.registry.discovery.GossipDiscovery` gives each
    device a partial, possibly stale view that converges via
    anti-entropy rounds.  The index itself stays authoritative — it is
    what :meth:`verify_holder` checks chosen sources against.
    """

    def __init__(
        self,
        network: NetworkModel,
        index: Optional[PeerIndex] = None,
        discovery: Optional[DiscoveryBackend] = None,
    ) -> None:
        self.network = network
        self.index = index if index is not None else PeerIndex()
        self.discovery = (
            discovery if discovery is not None else OmniscientDiscovery(self.index)
        )
        self._regions: Dict[str, str] = {}
        self._members: Dict[str, Set[str]] = {}
        self._demand: Dict[Tuple[str, str], int] = {}
        self._demand_total: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def add_device(
        self, device: str, cache: ImageCache, region: str = "edge"
    ) -> None:
        """Join ``device`` (and its cache) to the swarm."""
        self.index.register_cache(device, cache)
        self._regions[device] = region
        self._members.setdefault(region, set()).add(device)
        self.discovery.on_join(device, cache, region)

    def remove_device(
        self, device: str, engine: Optional["TransferEngine"] = None
    ) -> None:
        """Depart ``device`` from the swarm (churn).

        The peer index forgets its holdings immediately — committed
        replicas elsewhere are unaffected — and, when a time-resolved
        ``engine`` is given, every upload the device was seeding is
        cancelled so its customers re-resolve to other sources.
        """
        self.discovery.on_leave(device)
        self.index.unregister_cache(device)
        region = self._regions.pop(device)
        members = self._members.get(region)
        if members is not None:
            members.discard(device)
            if not members:
                del self._members[region]
        if engine is not None:
            engine.cancel_uploads_from(device, reason=f"{device} departed")

    def devices(self) -> List[str]:
        return list(self._regions)

    def regions(self) -> List[str]:
        return sorted(self._members)

    def region_of(self, device: str) -> str:
        return self._regions[device]

    def is_member(self, device: str) -> bool:
        """Whether ``device`` is currently joined (not churned out)."""
        return device in self._regions

    def members(self, region: str) -> FrozenSet[str]:
        return frozenset(self._members.get(region, ()))

    # ------------------------------------------------------------------
    # peer lookup
    # ------------------------------------------------------------------
    def best_peer(
        self,
        digest: str,
        device: str,
        exclude: FrozenSet[str] = frozenset(),
    ) -> Optional[str]:
        """Fastest reachable peer holding ``digest`` (region first).

        Same-region holders are preferred — they are the cheap LAN hop
        a real swarm gossips over — and checked before falling back to
        a full scan, which keeps the lookup fast in large swarms where
        a hot layer may have hundreds of holders.  ``exclude`` names
        peers the caller already found saturated, departed, or stale;
        they are skipped so a re-resolution never returns the same
        dead end.

        Holders come from the discovery backend **as seen by
        ``device``** — under gossip discovery the answer may be stale
        (an entry for an evicted layer or a departed peer); callers on
        the pull path must :meth:`verify_holder` before transferring.
        """
        holders = self.discovery.view(device, digest)
        if not holders:
            return None
        # Walk the device's in-neighbors in (-bandwidth, name) order —
        # the exact total order ``_fastest`` minimises over — and
        # return the first one holding the layer.  A hot layer's
        # holder set dwarfs a device's degree at swarm scale, and the
        # holder-membership probe is O(1), so a lookup usually costs a
        # handful of probes instead of a scan over every holder.
        preference = self.network.device_sources_by_preference(device)
        region = self._regions.get(device)
        if region is not None:
            members = self._members.get(region, _NO_HOLDERS)
            for peer in preference:
                if (
                    peer in holders
                    and peer in members
                    and peer not in exclude
                ):
                    return peer
        for peer in preference:
            if peer in holders and peer not in exclude:
                return peer
        return None

    def _fastest(self, candidates: Iterable[str], device: str) -> Optional[str]:
        """Highest-bandwidth reachable candidate.

        The champion comparison is total — higher bandwidth wins, and
        equal bandwidth falls back to the lexicographically smaller
        device name — so the result is independent of candidate
        iteration order, hash seeds, or Python version (no sort
        needed).  Gossip/churn sweeps rely on this for
        reproducibility.
        """
        row = self.network.channels_into(device)
        best: Optional[str] = None
        best_bw = 0.0
        for peer in candidates:
            channel = row.get(peer)
            if channel is None:
                continue
            bandwidth = channel.bandwidth_mbps
            if (
                best is None
                or bandwidth > best_bw
                or (bandwidth == best_bw and peer < best)
            ):
                best, best_bw = peer, bandwidth
        return best

    def verify_holder(self, viewer: str, holder: str, digest: str) -> bool:
        """Check a discovered holder against the ground-truth index.

        True when ``holder`` really holds ``digest``.  When it does not:
        an authoritative backend has an index coherence bug (raise);
        a gossip backend served a stale view entry — the miss is
        metered, the viewer's view is corrected, and False is returned
        so the caller can exclude the holder and fall back through
        regional → hub.
        """
        if self.index.holds(holder, digest):
            return True
        if self.discovery.authoritative:
            raise RegistryError(
                f"peer index incoherent: {holder!r} does not hold {digest}"
            )
        self.discovery.record_miss(viewer, holder, digest)
        return False

    @property
    def stale_peer_misses(self) -> int:
        """Swarm-wide stale view entries caught by verification."""
        return self.discovery.stale_misses

    # ------------------------------------------------------------------
    # demand accounting (consumed by the adaptive replicator)
    # ------------------------------------------------------------------
    def record_demand(self, digest: str, device: str) -> None:
        """Count one remote fetch of ``digest`` by ``device``."""
        region = self._regions.get(device, "edge")
        key = (digest, region)
        self._demand[key] = self._demand.get(key, 0) + 1
        self._demand_total[digest] = self._demand_total.get(digest, 0) + 1

    def drain_demand(self) -> Dict[Tuple[str, str], int]:
        """Demand accumulated since the last drain; resets counters."""
        drained, self._demand = self._demand, {}
        return drained

    def total_demand(self, digest: str) -> int:
        """All-time remote fetches of ``digest`` (diagnostics)."""
        return self._demand_total.get(digest, 0)


class SourceKind(enum.Enum):
    """Where one layer of a pull plan comes from."""

    LOCAL = "local"
    PEER = "peer"
    REGISTRY = "registry"


@dataclass(frozen=True)
class LayerSource:
    """The resolved source of one layer."""

    digest: str
    size_bytes: int
    kind: SourceKind
    source: str
    seconds: float


@dataclass(frozen=True)
class PullPlan:
    """Cheapest-source resolution of one image pull onto one device."""

    device: str
    layers: Tuple[LayerSource, ...]

    @property
    def bytes_total(self) -> int:
        return sum(l.size_bytes for l in self.layers)

    @property
    def bytes_transferred(self) -> int:
        """Bytes that must actually move (non-local layers)."""
        return sum(
            l.size_bytes for l in self.layers if l.kind is not SourceKind.LOCAL
        )

    @property
    def bytes_from_peers(self) -> int:
        return sum(l.size_bytes for l in self.layers if l.kind is SourceKind.PEER)

    def bytes_by_registry(self) -> Dict[str, int]:
        """Registry name → bytes this plan pulls from it."""
        out: Dict[str, int] = {}
        for layer in self.layers:
            if layer.kind is SourceKind.REGISTRY:
                out[layer.source] = out.get(layer.source, 0) + layer.size_bytes
        return out

    @property
    def seconds(self) -> float:
        """Estimated transfer time (layers fetched sequentially)."""
        return sum(l.seconds for l in self.layers)

    @property
    def cache_hit(self) -> bool:
        return self.bytes_transferred == 0


class PullPlanner:
    """Resolves layers to their cheapest source by transfer time.

    Sources are compared by estimated seconds on the respective
    channel; ties prefer peers over registries (offloading the origin
    tiers is the point of the swarm) and earlier registries in the
    fallback chain over later ones (the chain is ordered regional →
    hub by convention).
    """

    def __init__(
        self,
        swarm: PeerSwarm,
        registries: Sequence[Registry],
        use_peers: bool = True,
    ) -> None:
        if not registries:
            raise ValueError("pull planner needs at least one registry")
        self.swarm = swarm
        self.registries = list(registries)
        self.use_peers = use_peers

    def plan(
        self, manifest: ImageManifest, device: str, cache: ImageCache
    ) -> PullPlan:
        sources = [
            self.resolve_layer(layer.digest, layer.size_bytes, device, cache)
            for layer in manifest.layers
        ]
        return PullPlan(device=device, layers=tuple(sources))

    def resolve_layer(
        self,
        digest: str,
        size_bytes: int,
        device: str,
        cache: ImageCache,
        exclude_peers: FrozenSet[str] = frozenset(),
    ) -> LayerSource:
        """Cheapest source for one layer right now.

        Time-resolved pulls call this repeatedly: once per layer at
        fetch time (so the choice sees only *committed* replicas) and
        again with a grown ``exclude_peers`` whenever the chosen peer
        turned out to be saturated or departed mid-transfer.
        """
        network = self.swarm.network
        if digest in cache:
            return LayerSource(digest, size_bytes, SourceKind.LOCAL, device, 0.0)
        size_mb = bytes_to_mb(size_bytes)
        best: Optional[LayerSource] = None
        if self.use_peers:
            peer = self.swarm.best_peer(digest, device, exclude=exclude_peers)
            if peer is not None:
                seconds = network.device_channel(peer, device).transfer_time_s(
                    size_mb
                )
                best = LayerSource(
                    digest, size_bytes, SourceKind.PEER, peer, seconds
                )
        for registry in self.registries:
            if digest not in registry.blobs:
                continue
            if not network.has_registry_channel(registry.name, device):
                continue
            seconds = network.registry_channel(
                registry.name, device
            ).transfer_time_s(size_mb)
            if best is None or seconds < best.seconds:
                best = LayerSource(
                    digest,
                    size_bytes,
                    SourceKind.REGISTRY,
                    registry.name,
                    seconds,
                )
        if best is None:
            raise RegistryError(
                f"layer {digest} unreachable from {device!r}: no "
                f"peer or registry source"
            )
        return best


@dataclass(frozen=True)
class P2PPullResult:
    """Outcome of one three-tier pull (mirrors ``PullResult``'s API)."""

    reference: ImageReference
    registry: str
    manifest: ImageManifest
    device: str
    plan: PullPlan
    evictions: Tuple[EvictionRecord, ...] = ()
    #: Discovered peer sources that failed ground-truth verification
    #: during this pull (stale view entries: evicted layers, departed
    #: holders).  Always 0 under omniscient discovery.
    stale_peer_misses: int = 0
    #: Bytes that moved over links but were thrown away: progress of a
    #: transfer abandoned mid-flight (seeder departed and the pull fell
    #: back) plus losing endgame duplicates.  Always 0 on the analytic
    #: path, where transfers never fall back mid-flight.
    bytes_wasted: int = 0
    #: Duplicate chunk re-requests issued by the chunked endgame (0 on
    #: single-source pulls).
    chunk_endgame_dupes: int = 0

    @property
    def bytes_total(self) -> int:
        return self.plan.bytes_total

    @property
    def bytes_transferred(self) -> int:
        return self.plan.bytes_transferred

    @property
    def bytes_from_peers(self) -> int:
        return self.plan.bytes_from_peers

    def bytes_by_registry(self) -> Dict[str, int]:
        return self.plan.bytes_by_registry()

    @property
    def seconds(self) -> float:
        return self.plan.seconds

    @property
    def cache_hit(self) -> bool:
        return self.plan.cache_hit

    @property
    def hit_ratio(self) -> float:
        if self.bytes_total == 0:
            return 1.0
        return 1.0 - self.bytes_transferred / self.bytes_total


class P2PRegistry:
    """Three-tier pull facade: local cache → peer swarm → registries.

    Presents the same resolve/pull shape as a single registry while
    internally fanning each layer out to its cheapest source.  The
    registry chain is preference-ordered (regional before hub); tag
    resolution walks the chain and uses the first registry that can
    serve the reference, so hub-only images still resolve.

    ``chunked=True`` (opt-in; needs the time-resolved engine) replaces
    the per-layer single-source fetch of :meth:`pull_process` with the
    BitTorrent-style per-chunk schedule of
    :class:`~repro.registry.chunks.ChunkSwarmPlanner`: rarest-first
    chunk selection across full and *partial* holders, up to
    ``chunk_parallel`` concurrent sources per layer, endgame registry
    re-requests for stragglers, and per-chunk (not per-layer)
    re-resolution on seeder departure or saturation.  The default
    ``chunked=False`` keeps the analytic and single-source paths
    bit-for-bit unchanged.
    """

    def __init__(
        self,
        swarm: PeerSwarm,
        registries: Sequence[Registry],
        name: str = "p2p",
        use_peers: bool = True,
        chunked: bool = False,
        chunk_size_bytes: int = DEFAULT_CHUNK_SIZE_BYTES,
        chunk_parallel: int = 4,
        chunk_seed: int = 0,
        chunk_endgame: bool = True,
    ) -> None:
        self.swarm = swarm
        self.name = name
        self.planner = PullPlanner(swarm, registries, use_peers=use_peers)
        self.chunks: Optional[ChunkSwarmPlanner] = None
        if chunked:
            self.chunks = ChunkSwarmPlanner(
                swarm,
                self.planner.registries,
                chunk_size_bytes=chunk_size_bytes,
                max_parallel=chunk_parallel,
                seed=chunk_seed,
                endgame=chunk_endgame,
                use_peers=use_peers,
            )

    @property
    def registries(self) -> List[Registry]:
        return self.planner.registries

    def resolve(
        self, reference: ImageReference, arch: Arch
    ) -> Tuple[Registry, ImageManifest]:
        """First registry in the chain that resolves ``reference``."""
        last_error: Optional[Exception] = None
        for registry in self.planner.registries:
            try:
                return registry, registry.resolve(reference, arch)
            except (ManifestNotFound, KeyError) as exc:
                last_error = exc
        raise ManifestNotFound(
            f"{reference} not resolvable by any of "
            f"{[r.name for r in self.planner.registries]}"
        ) from last_error

    def plan(
        self, reference: ImageReference, arch: Arch, device: str, cache: ImageCache
    ) -> PullPlan:
        _, manifest = self.resolve(reference, arch)
        return self.planner.plan(manifest, device, cache)

    def pull_process(
        self,
        reference: ImageReference,
        arch: Arch,
        device: str,
        cache: ImageCache,
        engine: TransferEngine,
    ):
        """Time-resolved pull: a DES process whose return value is the
        :class:`P2PPullResult` (yield it from a simulator process).

        Differences from the analytic :meth:`pull`:

        * each layer is resolved **at fetch time** against committed
          replicas only — a layer another device is still downloading
          is invisible until its reserve→commit completes;
        * layer bytes occupy shared links for real (fair-share rates,
          upload budgets) via ``engine``;
        * a source that turns out saturated
          (:class:`UploadBudgetExceeded`) or departs mid-transfer
          (:class:`TransferCancelled`) is excluded and the layer is
          re-resolved against whatever the swarm holds *now*;
        * the device cache admits each layer only when its transfer
          completes (reserve → commit), so this device in turn becomes
          a peer source no earlier than it truly holds the bytes.
        """
        sim = engine.sim
        resolved_registry, manifest = self.resolve(reference, arch)
        missing = [l for l in manifest.layers if l.digest not in cache]
        needed = sum(l.size_bytes for l in missing)
        # Only a *permanently* impossible image fails upfront.  Bytes
        # reserved by concurrent transfers are deliberately ignored:
        # they are transient (they commit into evictable entries or
        # get released), so counting them would nondeterministically
        # abort pulls that a moment later would fit.  If reservations
        # truly starve a layer mid-pull, its reserve() fails loudly.
        if needed > cache.capacity_bytes:
            raise CacheFull(
                f"image {manifest.digest} needs {needed} new bytes; cache "
                f"capacity is {cache.capacity_bytes} B"
            )
        metered: Set[str] = set()
        evictions: List[EvictionRecord] = []
        sources: List[LayerSource] = []
        stale_misses = 0
        wasted_bytes = 0
        endgame_dupes = 0

        def meter_registry(registry_name: str) -> None:
            # Mirrors the single-source path: blob existence check per
            # layer, pull metering once per registry per pull (may
            # raise — hub rate limiting — aborting the fetch).
            registry = self._registry_named(registry_name)
            registry.fetch_blob(layer.digest)
            if registry_name not in metered:
                registry.meter_pull(device, sim.now)
                metered.add(registry_name)

        for layer in manifest.layers:
            layer_start = sim.now
            joined = False
            spins = 0
            while True:
                if layer.digest in cache:
                    # Present (possibly only after waiting out a
                    # concurrent download of the same layer).
                    cache.touch(layer.digest)
                    sources.append(
                        LayerSource(
                            layer.digest,
                            layer.size_bytes,
                            SourceKind.LOCAL,
                            device,
                            sim.now - layer_start,
                        )
                    )
                    joined = True
                    break
                if cache.is_reserved(layer.digest):
                    # Another process (concurrent pull or replicator
                    # copy) is already landing this layer here: join
                    # its download instead of fetching twice.
                    if self.chunks is not None:
                        waiter = self.chunks.inflight_event(
                            device, layer.digest
                        )
                        if waiter is not None:
                            # A chunked fetch is assembling the layer;
                            # wait for it to finish (or abort), then
                            # re-check presence.
                            yield waiter
                            continue
                    other = engine.inflight_to(device, layer.digest)
                    if other is not None:
                        try:
                            yield other.done
                        except TransferCancelled:
                            pass  # its owner re-resolves; re-check
                        continue
                    # The owner is between attempts at this very
                    # timestamp; step one queue tick and look again.
                    spins += 1
                    if spins > 1000:
                        raise RegistryError(
                            f"reservation for {layer.digest} on {device!r} "
                            f"has no in-flight transfer and no owner "
                            f"making progress"
                        )
                    yield sim.timeout(0.0)
                    continue
                break
            if joined:
                continue
            if self.chunks is not None:
                outcome = yield from self.chunks.fetch_layer(
                    device,
                    cache,
                    layer.digest,
                    layer.size_bytes,
                    engine,
                    meter_registry=meter_registry,
                )
                evictions.extend(outcome.evictions)
                sources.extend(self._chunk_sources(layer, outcome, device))
                stale_misses += outcome.stale_misses
                wasted_bytes += outcome.wasted_bytes
                endgame_dupes += outcome.endgame_dupes
                if not outcome.local:
                    self.swarm.record_demand(layer.digest, device)
                continue
            evictions.extend(cache.reserve(layer.digest, layer.size_bytes))
            excluded: Set[str] = set()
            while True:
                try:
                    best = self.planner.resolve_layer(
                        layer.digest,
                        layer.size_bytes,
                        device,
                        cache,
                        exclude_peers=frozenset(excluded),
                    )
                except RegistryError:
                    cache.release(layer.digest)
                    raise
                if best.kind is SourceKind.PEER:
                    try:
                        verified = self.swarm.verify_holder(
                            device, best.source, layer.digest
                        )
                    except RegistryError:
                        cache.release(layer.digest)
                        raise
                    if not verified:
                        # Stale view entry (gossip): the miss is already
                        # metered; exclude the dead end and re-resolve —
                        # the fallback chain ends at regional → hub.
                        stale_misses += 1
                        excluded.add(best.source)
                        continue
                    try:
                        transfer = engine.start(
                            best.source,
                            device,
                            layer.size_bytes,
                            digest=layer.digest,
                        )
                    except UploadBudgetExceeded:
                        excluded.add(best.source)
                        continue
                else:
                    registry = self._registry_named(best.source)
                    try:
                        registry.fetch_blob(layer.digest)
                        if registry.name not in metered:
                            # May raise (hub rate limiting): the
                            # reservation must not outlive the pull.
                            registry.meter_pull(device, sim.now)
                            metered.add(registry.name)
                    except Exception:
                        cache.release(layer.digest)
                        raise
                    transfer = engine.start(
                        registry.name,
                        device,
                        layer.size_bytes,
                        src_is_registry=True,
                        digest=layer.digest,
                    )
                fetch_start = sim.now
                try:
                    yield transfer.done
                except TransferCancelled:
                    # Whole-layer restart: everything the dead transfer
                    # already delivered is thrown away.  Metering it is
                    # the baseline the chunked path improves on (only
                    # the cancelled *chunk*'s progress is lost there).
                    wasted_bytes += transfer.moved_bytes
                    excluded.add(best.source)
                    continue
                cache.commit(layer.digest)
                sources.append(
                    LayerSource(
                        layer.digest,
                        layer.size_bytes,
                        best.kind,
                        best.source,
                        sim.now - fetch_start,
                    )
                )
                self.swarm.record_demand(layer.digest, device)
                break
        return P2PPullResult(
            reference=reference,
            registry=resolved_registry.name,
            manifest=manifest,
            device=device,
            plan=PullPlan(device=device, layers=tuple(sources)),
            evictions=tuple(evictions),
            stale_peer_misses=stale_misses,
            bytes_wasted=wasted_bytes,
            chunk_endgame_dupes=endgame_dupes,
        )

    def _chunk_sources(
        self, layer, outcome: ChunkFetchOutcome, device: str
    ) -> List[LayerSource]:
        """Per-source plan entries for one chunked layer fetch.

        One :class:`LayerSource` per distinct serving source, sized by
        the chunk bytes it delivered — so downstream accounting
        (``bytes_by_registry``, kubelet ``bytes_from.<name>`` counters)
        is chunk-granular for free.  The layer's wall-clock duration is
        carried by the largest contributor (ties: source name) and the
        rest report 0 s, keeping ``plan.seconds`` a sum of per-layer
        wall times like the single-source path.  A layer that landed
        without moving bytes (absorbed by a concurrent insert) is one
        LOCAL entry.
        """
        if outcome.local:
            return [
                LayerSource(
                    layer.digest,
                    layer.size_bytes,
                    SourceKind.LOCAL,
                    device,
                    outcome.seconds,
                )
            ]
        entries = sorted(
            outcome.bytes_by_source.items(),
            key=lambda item: (-item[1], item[0][1]),
        )
        primary = entries[0][0]
        out: List[LayerSource] = []
        for (kind, source), size in entries:
            out.append(
                LayerSource(
                    layer.digest,
                    size,
                    SourceKind.PEER if kind == "peer" else SourceKind.REGISTRY,
                    source,
                    outcome.seconds if (kind, source) == primary else 0.0,
                )
            )
        return out

    def _registry_named(self, name: str) -> Registry:
        for registry in self.planner.registries:
            if registry.name == name:
                return registry
        raise RegistryError(f"no registry named {name!r} in the pull chain")

    def pull(
        self,
        reference: ImageReference,
        arch: Arch,
        device: str,
        cache: ImageCache,
        now_s: float = 0.0,
    ) -> P2PPullResult:
        """Resolve, plan, verify sources, and admit layers into ``cache``.

        Each layer's source is resolved through the discovery backend
        and **verified** against the ground-truth index before it
        counts: a stale view entry (gossip discovery) is metered,
        excluded, and the layer re-resolved — falling back through the
        registry chain when the view holds nothing real.  Demand is
        recorded against the swarm for every layer that had to move
        (local hits need no replication), which is the signal the
        adaptive replicator consumes.
        """
        resolved_registry, manifest = self.resolve(reference, arch)
        sources: List[LayerSource] = []
        stale_misses = 0
        for layer in manifest.layers:
            best, misses = self._resolve_verified(
                layer.digest, layer.size_bytes, device, cache
            )
            stale_misses += misses
            sources.append(best)
        plan = PullPlan(device=device, layers=tuple(sources))
        # Meter the registries that actually serve bytes (mirrors the
        # two-tier client: cache hits and peer-served pulls don't burn
        # hub rate-limit tokens — offloading them is the tier's point).
        served = {
            layer.source
            for layer in plan.layers
            if layer.kind is SourceKind.REGISTRY
        }
        for registry in self.planner.registries:
            if registry.name in served:
                registry.meter_pull(device, now_s)
        for layer in plan.layers:
            if layer.kind is SourceKind.REGISTRY:
                registry = next(
                    r for r in self.planner.registries if r.name == layer.source
                )
                registry.fetch_blob(layer.digest)
        # admit_image (not a bare add loop) keeps the CacheFull guard
        # and the an-image-cannot-evict-itself guarantee of the
        # two-tier client's pull path.
        evictions = list(cache.admit_image(manifest))
        for layer in plan.layers:
            if layer.kind is not SourceKind.LOCAL:
                self.swarm.record_demand(layer.digest, device)
        return P2PPullResult(
            reference=reference,
            registry=resolved_registry.name,
            manifest=manifest,
            device=device,
            plan=plan,
            evictions=tuple(evictions),
            stale_peer_misses=stale_misses,
        )

    def _resolve_verified(
        self,
        digest: str,
        size_bytes: int,
        device: str,
        cache: ImageCache,
    ) -> Tuple[LayerSource, int]:
        """Cheapest source whose holder survives verification.

        Returns ``(source, stale_misses)``.  Peer sources come from the
        device's discovery view; each candidate is checked against the
        ground-truth index and stale entries are excluded until a real
        holder — or a registry — remains.
        """
        excluded: Set[str] = set()
        misses = 0
        while True:
            best = self.planner.resolve_layer(
                digest,
                size_bytes,
                device,
                cache,
                exclude_peers=frozenset(excluded),
            )
            if best.kind is SourceKind.PEER and not self.swarm.verify_holder(
                device, best.source, digest
            ):
                misses += 1
                excluded.add(best.source)
                continue
            return best, misses


@dataclass(frozen=True)
class ReplicationAction:
    """One proactive layer copy performed by the replicator."""

    digest: str
    region: str
    target: str
    source: str
    size_bytes: int
    #: Estimated transfer time of the copy over the source→target
    #: channel (replication runs in the background; this is reported
    #: so its traffic is never mistaken for free).
    seconds: float = 0.0


@dataclass(frozen=True)
class ReplicatorCycle:
    """What one replication cycle saw and did."""

    time_s: float
    hot_digests: Tuple[str, ...]
    actions: Tuple[ReplicationAction, ...]
    replica_counts: Dict[str, int]


class AdaptiveReplicator:
    """Demand-driven hot-layer replication, run as a DES process.

    Every ``interval_s`` simulated seconds the replicator drains the
    swarm's demand counters into an exponentially decayed score per
    (digest, region).  Digests whose *swarm-wide* score reaches
    ``hot_threshold`` are hot; every region then holding fewer than
    ``target_replicas`` copies is under-provisioned and receives one —
    copied into the cache of the member with the most free space.
    The anticipation is the point: a layer that went hot in one region
    is replicated into the others *before* they ask, so their first
    pull is already a LAN-speed peer hit.  Copies go through the
    ordinary cache insert, so the peer index stays coherent and cold
    layers can be evicted by the copy like any other insert.

    Convergence is observable: once demand cools, cycles perform zero
    actions and :meth:`converged` turns true.
    """

    def __init__(
        self,
        sim: Simulator,
        swarm: PeerSwarm,
        interval_s: float = 60.0,
        hot_threshold: float = 3.0,
        target_replicas: int = 2,
        decay: float = 0.5,
        max_actions_per_cycle: int = 64,
        engine: Optional[TransferEngine] = None,
        churn: Optional["ChurnProcess"] = None,
        hotness: str = "global",
        hot_fraction: Optional[float] = None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        if target_replicas < 1:
            raise ValueError(f"target_replicas must be >= 1, got {target_replicas}")
        if not 0.0 <= decay < 1.0:
            raise ValueError(f"decay must be in [0, 1), got {decay}")
        if hotness not in ("global", "per-region"):
            raise ValueError(
                f"unknown hotness scope {hotness!r}; expected 'global' or "
                f"'per-region'"
            )
        if hot_fraction is not None:
            if not 0.0 < hot_fraction <= 1.0:
                raise ValueError(
                    f"hot_fraction must be in (0, 1], got {hot_fraction}"
                )
            if hotness != "per-region":
                raise ValueError(
                    "hot_fraction scales the per-region threshold; it needs "
                    f"hotness='per-region' (got {hotness!r})"
                )
        self.sim = sim
        self.swarm = swarm
        self.interval_s = interval_s
        self.hot_threshold = hot_threshold
        self.target_replicas = target_replicas
        self.decay = decay
        self.max_actions_per_cycle = max_actions_per_cycle
        #: When set, proactive copies move through the time-resolved
        #: transfer engine (reserve → transfer → commit) instead of
        #: landing instantly; ``bytes_replicated`` then counts only
        #: *delivered* copies.
        self.engine = engine
        #: When set, replication targets become churn-aware: a region's
        #: replica count weights each holder by its *observed*
        #: availability (:meth:`~repro.sim.churn.ChurnProcess.availability`),
        #: so a region whose holders keep departing is treated as
        #: under-provisioned instead of counted at face value.  Without
        #: a churn process (or before any departure is observed) every
        #: weight is 1.0 — bit-for-bit the historical behaviour.
        self.churn = churn
        #: ``"global"`` (the historical policy): a digest whose
        #: swarm-wide score clears ``hot_threshold`` is topped up in
        #: *every* region.  ``"per-region"``: a region only receives a
        #: proactive copy when its own demand score clears the
        #: threshold — colder regions wait for their first pull.
        self.hotness = hotness
        #: Per-region auto-scaling: when set, a (digest, region) pair
        #: is hot when its score reaches ``hot_fraction`` of the
        #: cycle's *peak* per-region score, not the absolute
        #: ``hot_threshold``.  Per-region scores shrink as regions do,
        #: so the absolute knob goes deaf on small regions; the
        #: fraction adapts to whatever magnitude the cycle carries.
        self.hot_fraction = hot_fraction
        self.history: List[ReplicatorCycle] = []
        self.bytes_replicated = 0
        self._scores: Dict[Tuple[str, str], float] = {}
        #: Optional telemetry trace sink (duck-typed, None = off):
        #: receives one ``replicator.cycle`` record per cycle.
        self.trace = None

    # ------------------------------------------------------------------
    # the DES process
    # ------------------------------------------------------------------
    def process(self, cycles: Optional[int] = None):
        """Generator to hand to ``sim.process`` (None = run forever).

        The run-forever form ticks on daemon timeouts, so it never
        keeps a horizonless ``sim.run()`` from terminating; a bounded
        ``cycles`` run uses ordinary timeouts and is awaitable.
        """
        done = 0
        while cycles is None or done < cycles:
            yield self.sim.timeout(self.interval_s, daemon=(cycles is None))
            self.run_cycle()
            done += 1

    # ------------------------------------------------------------------
    # one cycle of continuous reasoning
    # ------------------------------------------------------------------
    def run_cycle(self) -> ReplicatorCycle:
        """Drain demand, refresh scores, replicate, record history."""
        bytes0 = self.bytes_replicated
        fresh = self.swarm.drain_demand()
        scores: Dict[Tuple[str, str], float] = {}
        for key, score in self._scores.items():
            decayed = score * self.decay
            if decayed >= 0.01:
                scores[key] = decayed
        for key, count in fresh.items():
            scores[key] = scores.get(key, 0.0) + count
        self._scores = scores

        swarm_score: Dict[str, float] = {}
        for (digest, _region), score in scores.items():
            swarm_score[digest] = swarm_score.get(digest, 0.0) + score
        if self.hotness == "per-region":
            # A (digest, region) pair is hot only on that region's own
            # decayed demand; hot digests are those hot *somewhere*,
            # ranked by swarm-wide score exactly like the global policy
            # so the two scopes stay comparable cycle for cycle.
            if self.hot_fraction is not None:
                # Auto-scaled threshold: a fraction of this cycle's
                # peak per-region score.  The peak pair is hot by
                # construction, so a cycle with any demand always acts.
                peak = max(scores.values(), default=0.0)
                threshold = self.hot_fraction * peak
                hot_pairs = {
                    key for key, score in scores.items()
                    if peak > 0.0 and score >= threshold
                }
            else:
                hot_pairs = {
                    key for key, score in scores.items()
                    if score >= self.hot_threshold
                }
            hot = sorted(
                {digest for digest, _region in hot_pairs},
                key=lambda d: (-swarm_score[d], d),
            )
        else:
            hot_pairs = None
            hot = sorted(
                (d for d, score in swarm_score.items()
                 if score >= self.hot_threshold),
                key=lambda d: (-swarm_score[d], d),
            )
        actions: List[ReplicationAction] = []
        for digest in hot:
            if len(actions) >= self.max_actions_per_cycle:
                break
            for region in self.swarm.regions():
                if len(actions) >= self.max_actions_per_cycle:
                    break
                if hot_pairs is not None and (digest, region) not in hot_pairs:
                    continue
                action = self._replicate(digest, region)
                if action is not None:
                    actions.append(action)

        cycle = ReplicatorCycle(
            time_s=self.sim.now,
            hot_digests=tuple(hot),
            actions=tuple(actions),
            replica_counts={
                digest: len(self.swarm.discovery.management_view(digest))
                for digest in hot
            },
        )
        self.history.append(cycle)
        if self.trace is not None:
            # ``bytes`` is this cycle's delta of *accounted* replica
            # bytes (engine-backed copies count at commit, so a cycle
            # whose transfers are still in flight reports 0 here).
            self.trace.record(
                self.sim.now, "replicator.cycle", "",
                hot=len(hot), actions=len(actions),
                bytes=self.bytes_replicated - bytes0,
            )
        return cycle

    def _replicate(self, digest: str, region: str) -> Optional[ReplicationAction]:
        index = self.swarm.index
        discovery = self.swarm.discovery
        # The replicator reasons over the management-plane view — under
        # gossip discovery a partial, possibly stale picture of the
        # replica map (the continuous-reasoning realism axis); under
        # omniscient discovery exactly the committed set, as before.
        holders = set(discovery.management_view(digest))
        if not holders:
            return None  # nobody to copy from; the next pull will seed it
        in_region = holders & self.swarm.members(region)
        if self._effective_replicas(in_region) >= self.target_replicas:
            return None
        size = discovery.size_of(digest)
        if size is None:
            return None
        candidates = sorted(
            (
                member
                for member in self.swarm.members(region)
                if member not in holders
            ),
            key=lambda m: (-index.cache_of(m).free_bytes, m),
        )
        for target in candidates:
            cache = index.cache_of(target)
            if size > cache.capacity_bytes:
                continue
            if cache.is_reserved(digest):
                continue  # a copy (or pull) of this layer is already in flight
            # A copy needs a real channel from some *verified* holder:
            # stale view entries are metered and dropped, and a region
            # no surviving holder can reach cannot be provisioned
            # peer-to-peer (its first pull will seed it from a
            # registry instead).
            source = self._verified_source(holders, target, digest)
            if source is None:
                continue
            seconds = self.swarm.network.device_channel(
                source, target
            ).transfer_time_s(bytes_to_mb(size))
            if self.engine is None:
                cache.add(digest, size)  # updates the peer index via the hook
                self.bytes_replicated += size
            else:
                try:
                    cache.reserve(digest, size)
                except CacheFull:
                    continue
                try:
                    transfer = self.engine.start(
                        source, target, size, digest=digest
                    )
                except UploadBudgetExceeded:
                    cache.release(digest)
                    continue  # seeder saturated; demand will retrigger
                self.sim.process(self._deliver(transfer, cache, digest, size))
            return ReplicationAction(
                digest=digest,
                region=region,
                target=target,
                source=source,
                size_bytes=size,
                seconds=seconds,
            )
        return None

    def _effective_replicas(self, holders: Set[str]) -> float:
        """Availability-weighted replica count of one region's holders.

        Face-value counting treats a replica on a device that is
        online 20% of the time like one that never leaves; weighting
        by observed session behaviour makes departure-prone regions
        look under-provisioned — which they are, from the perspective
        of the next pull.  Without a churn process every weight is 1
        and this is exactly ``len(holders)``.
        """
        if self.churn is None:
            return float(len(holders))
        # Float addition is not associative: summing in set order would
        # make the replica weight — and every threshold decision built
        # on it — vary with the hash seed.
        return sum(
            self.churn.availability(holder) for holder in sorted(holders)
        )

    def _verified_source(
        self, holders: Set[str], target: str, digest: str
    ) -> Optional[str]:
        """Fastest believed holder that really holds ``digest``.

        Stale entries are pruned from ``holders`` in place (and the
        miss metered against the management view), so one replication
        cycle never trips over the same dead entry twice.
        """
        swarm = self.swarm
        while True:
            source = swarm._fastest(holders, target)
            if source is None:
                return None
            if swarm.verify_holder(swarm.discovery.observer, source, digest):
                return source
            holders.discard(source)

    def _deliver(self, transfer, cache: ImageCache, digest: str, size: int):
        """Commit a proactive copy when its transfer lands (DES process)."""
        try:
            yield transfer.done
        except TransferCancelled:
            cache.release(digest)
            return
        cache.commit(digest)
        self.bytes_replicated += size

    # ------------------------------------------------------------------
    # convergence diagnostics
    # ------------------------------------------------------------------
    def converged(self, quiet_cycles: int = 3) -> bool:
        """True when the last ``quiet_cycles`` cycles did nothing."""
        if len(self.history) < quiet_cycles:
            return False
        return all(
            not cycle.actions for cycle in self.history[-quiet_cycles:]
        )

    def replica_trajectory(self, digest: str) -> List[int]:
        """Replica count of ``digest`` after each recorded cycle.

        Cycles in which the digest was not hot carry the last known
        count forward (the replicator only measures what it looks at).
        """
        out: List[int] = []
        last = 0
        for cycle in self.history:
            last = cycle.replica_counts.get(digest, last)
            out.append(last)
        return out

    def total_actions(self) -> int:
        return sum(len(cycle.actions) for cycle in self.history)
