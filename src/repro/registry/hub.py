"""Simulated Docker Hub: a cloud registry fronted by CDN PoPs.

Docker Hub "leverages a network of cloud data centers and content
delivery networks to guarantee low latency and scalability"; its images
are "served geographically closer to end users" (paper, Sec. I).  The
simulation captures exactly the part the model consumes: the effective
registry→device bandwidth ``BW_gj`` depends on which point of presence
serves the device's region, and pulls are rate-limited per client the
way the real Hub meters anonymous pulls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..model.registry import RegistryInfo, RegistryKind
from ..model.units import require_positive
from .base import Registry, RegistryError


@dataclass(frozen=True)
class PointOfPresence:
    """A CDN edge serving one or more regions.

    Attributes
    ----------
    name:
        PoP identifier (e.g. ``"eu-central"``).
    regions:
        Region labels served by this PoP.
    bandwidth_mbps:
        Download bandwidth the PoP offers to clients in its regions.
    """

    name: str
    regions: tuple
    bandwidth_mbps: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("PoP name must be non-empty")
        if not self.regions:
            raise ValueError(f"PoP {self.name!r} must serve >= 1 region")
        require_positive(self.bandwidth_mbps, "bandwidth_mbps")


class RateLimitExceeded(RegistryError):
    """Raised when a client exhausts its pull allowance in a window."""


class PullRateLimiter:
    """Fixed-window pull metering per client identity.

    Docker Hub famously limits anonymous pulls (e.g. 100 per 6 h).  The
    simulator counts manifest resolutions per ``client`` name within a
    window of simulated seconds; the limit is generous by default so
    the paper's experiments never trip it, but ablations can tighten it.
    """

    def __init__(self, limit: int = 100, window_s: float = 21600.0) -> None:
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        require_positive(window_s, "window_s")
        self.limit = limit
        self.window_s = window_s
        self._windows: Dict[str, tuple] = {}  # client -> (window_start, count)

    def record_pull(self, client: str, now_s: float) -> int:
        """Register one pull; returns pulls used in the current window."""
        start, count = self._windows.get(client, (now_s, 0))
        if now_s - start >= self.window_s:
            start, count = now_s, 0
        count += 1
        if count > self.limit:
            raise RateLimitExceeded(
                f"client {client!r} exceeded {self.limit} pulls / "
                f"{self.window_s} s"
            )
        self._windows[client] = (start, count)
        return count

    def remaining(self, client: str, now_s: float) -> int:
        start, count = self._windows.get(client, (now_s, 0))
        if now_s - start >= self.window_s:
            return self.limit
        return max(0, self.limit - count)


class DockerHub(Registry):
    """The public cloud registry with CDN-based distribution.

    Parameters
    ----------
    name:
        Registry name used in plans and network channels.
    pops:
        CDN points of presence.  A device's region is served by the
        fastest PoP covering it; regions covered by no PoP fall back to
        ``origin_bandwidth_mbps`` (the central data centre).
    origin_bandwidth_mbps:
        Bandwidth of the origin servers (the slow path).
    rate_limiter:
        Optional pull metering (None disables).
    """

    def __init__(
        self,
        name: str = "docker-hub",
        pops: Optional[List[PointOfPresence]] = None,
        origin_bandwidth_mbps: float = 50.0,
        rate_limiter: Optional[PullRateLimiter] = None,
    ) -> None:
        info = RegistryInfo(
            name=name, kind=RegistryKind.HUB, endpoint="https://hub.docker.com"
        )
        super().__init__(info)
        self.pops: List[PointOfPresence] = list(pops or [])
        self.origin_bandwidth_mbps = require_positive(
            origin_bandwidth_mbps, "origin_bandwidth_mbps"
        )
        self.rate_limiter = rate_limiter

    def add_pop(self, pop: PointOfPresence) -> None:
        if any(existing.name == pop.name for existing in self.pops):
            raise ValueError(f"duplicate PoP {pop.name!r}")
        self.pops.append(pop)

    def pop_for_region(self, region: str) -> Optional[PointOfPresence]:
        """Fastest PoP covering ``region``; None → origin fallback."""
        serving = [pop for pop in self.pops if region in pop.regions]
        if not serving:
            return None
        return max(serving, key=lambda pop: pop.bandwidth_mbps)

    def effective_bandwidth_mbps(self, region: str) -> float:
        """``BW_gj`` the Hub offers a client in ``region``."""
        pop = self.pop_for_region(region)
        return pop.bandwidth_mbps if pop is not None else self.origin_bandwidth_mbps

    def meter_pull(self, client: str, now_s: float) -> None:
        """Apply rate limiting for one pull (no-op when disabled)."""
        if self.rate_limiter is not None:
            self.rate_limiter.record_pull(client, now_s)
