"""Synthetic multi-arch image construction.

The paper builds its microservice images from official bases
(``amd64/ubuntu:18.04``, ``ubuntu:24.10``, ``alpine:3``,
``python:3.9-slim``, ``python:3.9`` — Sec. IV-C) and tags each for
``amd64`` and ``arm64``.  This module fabricates structurally faithful
stand-ins: every image is a shared base-layer stack plus
deterministically sized application layers summing to the Table II
image size.  Sharing base layers across images is what gives the
layer-dedup extension something real to deduplicate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..model.device import Arch
from ..model.units import gb_to_bytes
from .blobstore import BlobRecord
from .digest import digest_text
from .manifest import ImageManifest, LayerDescriptor, ManifestList


def synthetic_blob(identity: str, size_bytes: int) -> BlobRecord:
    """A size-only blob whose digest derives from a stable identity.

    Two calls with the same ``identity`` yield the same digest, which
    is how distinct images share base layers.
    """
    return BlobRecord(
        digest=digest_text(f"blob:{identity}"), size_bytes=size_bytes
    )


def config_blob(repository: str, arch: Arch) -> BlobRecord:
    """A small materialised config blob (real bytes, verifiable digest)."""
    payload = (
        f'{{"image":"{repository}","architecture":"{arch.value}","os":"linux"}}'
    ).encode("utf-8")
    from .digest import digest_bytes

    return BlobRecord(
        digest=digest_bytes(payload), size_bytes=len(payload), data=payload
    )


@dataclass(frozen=True)
class BaseImage:
    """An official base image: a per-arch stack of shared layers."""

    name: str
    layer_sizes_bytes: Tuple[int, ...]

    def layers_for(self, arch: Arch) -> List[BlobRecord]:
        """The (deterministic, arch-specific) base layer blobs."""
        return [
            synthetic_blob(f"base:{self.name}:{arch.value}:layer{i}", size)
            for i, size in enumerate(self.layer_sizes_bytes)
        ]


#: The official bases the paper lists, with representative compressed
#: sizes (layer split is ours; totals approximate the published images).
OFFICIAL_BASES: Dict[str, BaseImage] = {
    "amd64/ubuntu:18.04": BaseImage(
        "amd64/ubuntu:18.04", (26_000_000,)
    ),
    "ubuntu:24.10": BaseImage("ubuntu:24.10", (30_000_000,)),
    "alpine:3": BaseImage("alpine:3", (3_500_000,)),
    "python:3.9-slim": BaseImage(
        "python:3.9-slim", (27_000_000, 3_000_000, 12_000_000, 3_200_000)
    ),
    "python:3.9": BaseImage(
        "python:3.9",
        (55_000_000, 5_200_000, 10_500_000, 54_500_000, 196_000_000, 6_200_000),
    ),
}


def split_sizes(total_bytes: int, parts: int, identity: str) -> List[int]:
    """Deterministically split ``total_bytes`` into ``parts`` chunks.

    The split is uneven (geometric-ish weights seeded by the identity
    hash) so layer sizes look realistic, but it is exact: the chunks
    always sum to ``total_bytes``.
    """
    if parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts}")
    if total_bytes < 0:
        raise ValueError(f"negative total: {total_bytes}")
    if parts == 1:
        return [total_bytes]
    # Stable pseudo-weights in [1, 10] from the identity digest bytes.
    seed = digest_text(f"split:{identity}")
    weights = [1 + (int(seed[8 + 2 * i : 10 + 2 * i], 16) % 10) for i in range(parts)]
    weight_sum = sum(weights)
    sizes = [total_bytes * w // weight_sum for w in weights]
    sizes[-1] += total_bytes - sum(sizes)  # exactness
    return sizes


def build_image(
    repository: str,
    size_gb: float,
    base: Optional[BaseImage] = None,
    archs: Sequence[Arch] = (Arch.AMD64, Arch.ARM64),
    app_layers: int = 3,
    tag: str = "latest",
) -> Tuple[ManifestList, List[BlobRecord]]:
    """Fabricate a multi-arch image of ``size_gb`` total compressed size.

    Parameters
    ----------
    repository:
        Logical repository name (e.g. ``"vp-ha-train"``).
    size_gb:
        Target per-platform compressed size (``Size_mi`` of Table II).
    base:
        Shared base image; its layers count toward the total and are
        identical across images built on the same base.
    archs:
        Platforms to include (the paper tags amd64 + arm64).
    app_layers:
        Number of application layers on top of the base.

    Returns
    -------
    (manifest_list, blobs):
        The multi-arch manifest and every blob it references (config
        blobs materialised, layers synthetic).
    """
    if not archs:
        raise ValueError("at least one architecture required")
    total_bytes = gb_to_bytes(size_gb)
    manifests: List[ImageManifest] = []
    blobs: Dict[str, BlobRecord] = {}
    for arch in archs:
        base_blobs = base.layers_for(arch) if base is not None else []
        base_bytes = sum(b.size_bytes for b in base_blobs)
        app_bytes = max(0, total_bytes - base_bytes)
        app_sizes = split_sizes(app_bytes, app_layers, f"{repository}:{arch.value}")
        app_blobs = [
            synthetic_blob(f"app:{repository}:{arch.value}:layer{i}", size)
            for i, size in enumerate(app_sizes)
        ]
        config = config_blob(repository, arch)
        layer_blobs = base_blobs + app_blobs
        for blob in [config, *layer_blobs]:
            blobs[blob.digest] = blob
        manifests.append(
            ImageManifest(
                arch=arch,
                config_digest=config.digest,
                layers=tuple(
                    LayerDescriptor(b.digest, b.size_bytes) for b in layer_blobs
                ),
                annotations={"org.opencontainers.image.source": repository},
            )
        )
    mlist = ManifestList(
        manifests=tuple(manifests),
        annotations={"repro.repository": repository, "repro.tag": tag},
    )
    return mlist, list(blobs.values())
