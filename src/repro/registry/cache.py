"""Device-local image/layer cache with LRU eviction.

The paper's deployment-time term charges ``Size_mi / BW_gj`` only for
images "not already existing on a device".  :class:`ImageCache` tracks
what exists on a device:

* at **image** granularity (paper-faithful whole-image mode): a pulled
  image either is or is not fully present, and
* at **layer** granularity (the dedup extension, ablation A2): layers
  shared between images — e.g. the common ``python:3.9-slim`` base of
  the HA/LA variants — are transferred once.

Capacity is bounded by the device's storage; inserting past capacity
evicts least-recently-used entries, and an image is only *complete*
while every one of its layers survives.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from ..model.units import BYTES_PER_GB
from .manifest import ImageManifest


@dataclass(frozen=True)
class EvictionRecord:
    """One LRU eviction (digest and the bytes it freed)."""

    digest: str
    size_bytes: int


@dataclass(frozen=True)
class CacheEvent:
    """One presence change in an :class:`ImageCache`.

    Emitted to subscribers whenever a digest enters (``"add"``) or
    leaves (``"evict"`` for LRU victims, ``"remove"`` for explicit
    drops and :meth:`ImageCache.clear`) the cache.  Refreshing an
    already-present entry emits no event unless its size changed —
    presence, which is what subscribers such as the P2P peer index
    track, is unaffected by recency updates.
    """

    kind: str
    device: str
    digest: str
    size_bytes: int


#: A cache subscriber; called synchronously after the cache mutates.
CacheListener = Callable[[CacheEvent], None]


class CacheFull(RuntimeError):
    """Raised when a single item is larger than the whole cache."""


class ReservationError(RuntimeError):
    """Raised on conflicting or dangling reserve/commit calls."""


class ImageCache:
    """LRU cache of content-addressed entries on one device.

    Entries are layer digests plus manifest digests (a zero-byte marker
    recording that the full image was assembled).  Completeness of an
    image is always re-derived from layer presence, so layer evictions
    can never leave a stale "image present" claim behind.

    In-flight admission follows a **reserve → commit** protocol: a
    transfer that will land a layer first :meth:`reserve`\\ s its bytes
    (they count against capacity, evicting LRU entries if needed, but
    the digest is *not present* — no event is emitted, subscribers such
    as the peer index never see it), then :meth:`commit`\\ s at transfer
    completion (the digest becomes an entry and the ``"add"`` event
    fires) or :meth:`release`\\ s on abort.  The analytic pull path
    keeps using :meth:`add`/:meth:`admit_image`, which admit instantly.
    """

    def __init__(self, capacity_gb: float, device: str = "") -> None:
        if capacity_gb <= 0:
            raise ValueError(f"capacity_gb must be > 0, got {capacity_gb}")
        self.device = device
        self.capacity_bytes = int(capacity_gb * BYTES_PER_GB)
        self._entries: "OrderedDict[str, int]" = OrderedDict()
        self._used = 0
        self._reserved: Dict[str, int] = {}
        self._reserved_total = 0
        self._evictions: List[EvictionRecord] = []
        self._listeners: List[CacheListener] = []

    # ------------------------------------------------------------------
    # subscriptions (the hook the P2P peer index rides on)
    # ------------------------------------------------------------------
    def subscribe(self, listener: CacheListener) -> None:
        """Register ``listener`` for every presence change."""
        if listener not in self._listeners:
            self._listeners.append(listener)

    def unsubscribe(self, listener: CacheListener) -> None:
        """Drop a previously registered listener (no-op if absent)."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def _emit(self, kind: str, digest: str, size_bytes: int) -> None:
        if not self._listeners:
            return
        event = CacheEvent(kind, self.device, digest, size_bytes)
        # Snapshot: listeners may subscribe/unsubscribe (even remove
        # themselves) during delivery without corrupting the iteration.
        # A raising listener does not starve the others — every
        # listener sees the event, then the first failure re-raises so
        # a broken subscriber still crashes loudly.
        first_error: Optional[BaseException] = None
        for listener in tuple(self._listeners):
            try:
                listener(event)
            except Exception as exc:  # noqa: BLE001 - re-raised below
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    @property
    def used_bytes(self) -> int:
        """Bytes held by *committed* entries (reservations excluded)."""
        return self._used

    @property
    def reserved_bytes(self) -> int:
        """Bytes held for in-flight transfers (reserve → commit)."""
        return self._reserved_total

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self._used - self._reserved_total

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, digest: object) -> bool:
        return digest in self._entries

    @property
    def evictions(self) -> List[EvictionRecord]:
        """All evictions so far, oldest first."""
        return list(self._evictions)

    # ------------------------------------------------------------------
    # entry operations
    # ------------------------------------------------------------------
    def touch(self, digest: str) -> bool:
        """Mark ``digest`` most-recently-used; False if absent."""
        if digest not in self._entries:
            return False
        self._entries.move_to_end(digest)
        return True

    def add(self, digest: str, size_bytes: int) -> List[EvictionRecord]:
        """Insert (or refresh) an entry, evicting LRU entries as needed.

        Returns the evictions performed by this insertion.  Raises
        :class:`CacheFull` if the item alone exceeds capacity.
        """
        if size_bytes < 0:
            raise ValueError(f"negative entry size: {size_bytes}")
        if size_bytes > self.capacity_bytes:
            raise CacheFull(
                f"entry {digest} ({size_bytes} B) exceeds cache capacity "
                f"{self.capacity_bytes} B on {self.device or 'device'}"
            )
        # An instant insert absorbs any pending reservation for the
        # same digest: the bytes are now truly present, and the
        # in-flight transfer's eventual commit degrades to a refresh.
        self.release(digest)
        old_size = self._entries.get(digest)
        if old_size is not None:
            self._used -= self._entries.pop(digest)
        evicted: List[EvictionRecord] = []
        evicted.extend(self._evict_until_fits(size_bytes))
        self._entries[digest] = size_bytes
        self._used += size_bytes
        if old_size != size_bytes:
            self._emit("add", digest, size_bytes)
        return evicted

    def _evict_until_fits(self, size_bytes: int) -> List[EvictionRecord]:
        """Evict LRU entries until ``size_bytes`` more fit.

        Reserved bytes are untouchable (an in-flight transfer cannot be
        evicted — it isn't present yet), so when reservations plus the
        incoming size exceed capacity with no entries left to evict,
        the insert fails loudly instead of looping.
        """
        evicted: List[EvictionRecord] = []
        while (
            self._used + self._reserved_total + size_bytes > self.capacity_bytes
        ):
            if not self._entries:
                raise CacheFull(
                    f"cannot fit {size_bytes} B on {self.device or 'device'}: "
                    f"{self._reserved_total} B reserved by in-flight "
                    f"transfers and nothing left to evict"
                )
            victim, victim_size = self._entries.popitem(last=False)
            self._used -= victim_size
            record = EvictionRecord(victim, victim_size)
            evicted.append(record)
            self._evictions.append(record)
            self._emit("evict", victim, victim_size)
        return evicted

    # ------------------------------------------------------------------
    # reserve → commit admission (in-flight transfers)
    # ------------------------------------------------------------------
    def is_reserved(self, digest: str) -> bool:
        return digest in self._reserved

    def reserve(self, digest: str, size_bytes: int) -> List[EvictionRecord]:
        """Hold capacity for a transfer that will land ``digest``.

        The bytes count against capacity immediately (evicting LRU
        entries as needed) but the digest is **not present**: lookups
        miss it and no event reaches subscribers until :meth:`commit`.
        Reserving an already-cached digest is a no-op refresh (returns
        no evictions); reserving a digest twice is a
        :class:`ReservationError` — two transfers racing for the same
        layer on one device is a planner bug, not a cache state.
        """
        if size_bytes < 0:
            raise ValueError(f"negative entry size: {size_bytes}")
        if digest in self._reserved:
            raise ReservationError(
                f"{digest} already reserved on {self.device or 'device'}"
            )
        if digest in self._entries:
            self._entries.move_to_end(digest)
            return []
        if size_bytes > self.capacity_bytes:
            raise CacheFull(
                f"entry {digest} ({size_bytes} B) exceeds cache capacity "
                f"{self.capacity_bytes} B on {self.device or 'device'}"
            )
        evicted = self._evict_until_fits(size_bytes)
        self._reserved[digest] = size_bytes
        self._reserved_total += size_bytes
        return evicted

    def commit(self, digest: str) -> bool:
        """Turn a reservation into a present entry (emits ``"add"``).

        Returns True when a reservation was committed.  Committing a
        digest that was never reserved is allowed only when the digest
        is already present (the reserve was a no-op refresh): it
        refreshes recency and returns False.  Anything else is a
        :class:`ReservationError`.
        """
        size = self._reserved.pop(digest, None)
        if size is None:
            if digest in self._entries:
                self._entries.move_to_end(digest)
                return False
            raise ReservationError(
                f"commit of unreserved digest {digest} on "
                f"{self.device or 'device'}"
            )
        self._reserved_total -= size
        old_size = self._entries.pop(digest, None)
        if old_size is not None:
            self._used -= old_size
        self._entries[digest] = size
        self._used += size
        if old_size != size:
            self._emit("add", digest, size)
        return True

    def release(self, digest: str) -> bool:
        """Abort a reservation (transfer cancelled); True if one existed."""
        size = self._reserved.pop(digest, None)
        if size is None:
            return False
        self._reserved_total -= size
        return True

    def remove(self, digest: str) -> bool:
        """Explicitly drop an entry; True if it was present."""
        size = self._entries.pop(digest, None)
        if size is None:
            return False
        self._used -= size
        self._emit("remove", digest, size)
        return True

    def clear(self) -> None:
        dropped = list(self._entries.items())
        self._entries.clear()
        self._used = 0
        # Pending reservations are dropped too: a cleared device has no
        # business completing transfers into its old state (a commit
        # after clear raises ReservationError, loudly).
        self._reserved.clear()
        self._reserved_total = 0
        for digest, size in dropped:
            self._emit("remove", digest, size)

    # ------------------------------------------------------------------
    # image-level queries
    # ------------------------------------------------------------------
    def has_image(self, manifest: ImageManifest) -> bool:
        """True iff *every* layer of ``manifest`` is still cached."""
        return all(d in self._entries for d in manifest.layer_digests())

    def missing_layers(self, manifest: ImageManifest) -> List[str]:
        """Layer digests that a pull of ``manifest`` must transfer."""
        return [d for d in manifest.layer_digests() if d not in self._entries]

    def admit_image(self, manifest: ImageManifest) -> List[EvictionRecord]:
        """Insert all layers of ``manifest`` (after a successful pull).

        Layers are admitted in manifest order; already-present layers
        are refreshed.  The returned evictions never include layers of
        the image being admitted (an image cannot evict itself —
        guaranteed because admission order refreshes recency).
        """
        needed = sum(
            layer.size_bytes
            for layer in manifest.layers
            if layer.digest not in self._entries
        )
        if needed + self._reserved_total > self.capacity_bytes:
            raise CacheFull(
                f"image {manifest.digest} needs {needed} new bytes; cache "
                f"capacity is {self.capacity_bytes} B"
            )
        evicted: List[EvictionRecord] = []
        for layer in manifest.layers:
            evicted.extend(self.add(layer.digest, layer.size_bytes))
        return evicted

    def entries(self) -> List[Tuple[str, int]]:
        """(digest, size) pairs from least- to most-recently used."""
        return list(self._entries.items())
