"""Device-local image/layer cache with LRU eviction.

The paper's deployment-time term charges ``Size_mi / BW_gj`` only for
images "not already existing on a device".  :class:`ImageCache` tracks
what exists on a device:

* at **image** granularity (paper-faithful whole-image mode): a pulled
  image either is or is not fully present, and
* at **layer** granularity (the dedup extension, ablation A2): layers
  shared between images — e.g. the common ``python:3.9-slim`` base of
  the HA/LA variants — are transferred once.

Capacity is bounded by the device's storage; inserting past capacity
evicts least-recently-used entries, and an image is only *complete*
while every one of its layers survives.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from ..model.units import BYTES_PER_GB
from .manifest import ImageManifest


@dataclass(frozen=True)
class EvictionRecord:
    """One LRU eviction (digest and the bytes it freed)."""

    digest: str
    size_bytes: int


@dataclass(frozen=True)
class CacheEvent:
    """One presence change in an :class:`ImageCache`.

    Emitted to subscribers whenever a digest enters (``"add"``) or
    leaves (``"evict"`` for LRU victims, ``"remove"`` for explicit
    drops and :meth:`ImageCache.clear`) the cache.  Refreshing an
    already-present entry emits no event unless its size changed —
    presence, which is what subscribers such as the P2P peer index
    track, is unaffected by recency updates.
    """

    kind: str
    device: str
    digest: str
    size_bytes: int


#: A cache subscriber; called synchronously after the cache mutates.
CacheListener = Callable[[CacheEvent], None]


class CacheFull(RuntimeError):
    """Raised when a single item is larger than the whole cache."""


class ImageCache:
    """LRU cache of content-addressed entries on one device.

    Entries are layer digests plus manifest digests (a zero-byte marker
    recording that the full image was assembled).  Completeness of an
    image is always re-derived from layer presence, so layer evictions
    can never leave a stale "image present" claim behind.
    """

    def __init__(self, capacity_gb: float, device: str = "") -> None:
        if capacity_gb <= 0:
            raise ValueError(f"capacity_gb must be > 0, got {capacity_gb}")
        self.device = device
        self.capacity_bytes = int(capacity_gb * BYTES_PER_GB)
        self._entries: "OrderedDict[str, int]" = OrderedDict()
        self._used = 0
        self._evictions: List[EvictionRecord] = []
        self._listeners: List[CacheListener] = []

    # ------------------------------------------------------------------
    # subscriptions (the hook the P2P peer index rides on)
    # ------------------------------------------------------------------
    def subscribe(self, listener: CacheListener) -> None:
        """Register ``listener`` for every presence change."""
        if listener not in self._listeners:
            self._listeners.append(listener)

    def unsubscribe(self, listener: CacheListener) -> None:
        """Drop a previously registered listener (no-op if absent)."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def _emit(self, kind: str, digest: str, size_bytes: int) -> None:
        if not self._listeners:
            return
        event = CacheEvent(kind, self.device, digest, size_bytes)
        for listener in list(self._listeners):
            listener(event)

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self._used

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, digest: object) -> bool:
        return digest in self._entries

    @property
    def evictions(self) -> List[EvictionRecord]:
        """All evictions so far, oldest first."""
        return list(self._evictions)

    # ------------------------------------------------------------------
    # entry operations
    # ------------------------------------------------------------------
    def touch(self, digest: str) -> bool:
        """Mark ``digest`` most-recently-used; False if absent."""
        if digest not in self._entries:
            return False
        self._entries.move_to_end(digest)
        return True

    def add(self, digest: str, size_bytes: int) -> List[EvictionRecord]:
        """Insert (or refresh) an entry, evicting LRU entries as needed.

        Returns the evictions performed by this insertion.  Raises
        :class:`CacheFull` if the item alone exceeds capacity.
        """
        if size_bytes < 0:
            raise ValueError(f"negative entry size: {size_bytes}")
        if size_bytes > self.capacity_bytes:
            raise CacheFull(
                f"entry {digest} ({size_bytes} B) exceeds cache capacity "
                f"{self.capacity_bytes} B on {self.device or 'device'}"
            )
        old_size = self._entries.get(digest)
        if old_size is not None:
            self._used -= self._entries.pop(digest)
        evicted: List[EvictionRecord] = []
        while self._used + size_bytes > self.capacity_bytes:
            victim, victim_size = self._entries.popitem(last=False)
            self._used -= victim_size
            record = EvictionRecord(victim, victim_size)
            evicted.append(record)
            self._evictions.append(record)
            self._emit("evict", victim, victim_size)
        self._entries[digest] = size_bytes
        self._used += size_bytes
        if old_size != size_bytes:
            self._emit("add", digest, size_bytes)
        return evicted

    def remove(self, digest: str) -> bool:
        """Explicitly drop an entry; True if it was present."""
        size = self._entries.pop(digest, None)
        if size is None:
            return False
        self._used -= size
        self._emit("remove", digest, size)
        return True

    def clear(self) -> None:
        dropped = list(self._entries.items())
        self._entries.clear()
        self._used = 0
        for digest, size in dropped:
            self._emit("remove", digest, size)

    # ------------------------------------------------------------------
    # image-level queries
    # ------------------------------------------------------------------
    def has_image(self, manifest: ImageManifest) -> bool:
        """True iff *every* layer of ``manifest`` is still cached."""
        return all(d in self._entries for d in manifest.layer_digests())

    def missing_layers(self, manifest: ImageManifest) -> List[str]:
        """Layer digests that a pull of ``manifest`` must transfer."""
        return [d for d in manifest.layer_digests() if d not in self._entries]

    def admit_image(self, manifest: ImageManifest) -> List[EvictionRecord]:
        """Insert all layers of ``manifest`` (after a successful pull).

        Layers are admitted in manifest order; already-present layers
        are refreshed.  The returned evictions never include layers of
        the image being admitted (an image cannot evict itself —
        guaranteed because admission order refreshes recency).
        """
        needed = sum(
            layer.size_bytes
            for layer in manifest.layers
            if layer.digest not in self._entries
        )
        if needed > self.capacity_bytes:
            raise CacheFull(
                f"image {manifest.digest} needs {needed} new bytes; cache "
                f"capacity is {self.capacity_bytes} B"
            )
        evicted: List[EvictionRecord] = []
        for layer in manifest.layers:
            evicted.extend(self.add(layer.digest, layer.size_bytes))
        return evicted

    def entries(self) -> List[Tuple[str, int]]:
        """(digest, size) pairs from least- to most-recently used."""
        return list(self._entries.items())
