"""Registry behaviour shared by Docker Hub and the regional registry.

A registry stores repositories (tags → multi-arch manifests) and the
blobs they reference, and serves the three-step pull protocol used by
:mod:`repro.registry.client`:

1. resolve a ``repo:tag`` reference to a manifest list,
2. select the platform manifest for the puller's architecture,
3. fetch the layer blobs (the bytes the deployment time charges for).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..model.device import Arch
from ..model.registry import RegistryInfo, RegistryKind
from .blobstore import BlobRecord, BlobStore
from .manifest import ImageManifest, LayerDescriptor, ManifestList
from .repository import ManifestNotFound, RepositoryIndex


@dataclass(frozen=True)
class ImageReference:
    """Parsed ``[registry/]repo[:tag]`` reference.

    Only the repository and tag take part in resolution; the registry
    part is informational (Table I shows the same logical image under
    ``sina88/vp-frame`` on the Hub and
    ``dcloud2.itec.aau.at/aau/vp-frame`` regionally).
    """

    repository: str
    tag: str = "latest"

    def __post_init__(self) -> None:
        if not self.repository:
            raise ValueError("repository must be non-empty")
        if not self.tag:
            raise ValueError("tag must be non-empty")

    @classmethod
    def parse(cls, ref: str) -> "ImageReference":
        """Parse ``repo[:tag]`` (digests are resolved via repo methods)."""
        if "@" in ref:
            raise ValueError(
                f"digest references not supported here: {ref!r}"
            )
        if ":" in ref:
            repo, _, tag = ref.rpartition(":")
            return cls(repo, tag)
        return cls(ref)

    def __str__(self) -> str:
        return f"{self.repository}:{self.tag}"


class RegistryError(RuntimeError):
    """Registry-level failure (quota, unavailable, rate limited)."""


class Registry:
    """Base in-memory registry: repositories + content-addressed blobs."""

    def __init__(self, info: RegistryInfo) -> None:
        self.info = info
        self.repositories = RepositoryIndex()
        self.blobs = BlobStore()
        self._pull_count: Dict[str, int] = {}

    @property
    def name(self) -> str:
        return self.info.name

    @property
    def kind(self) -> RegistryKind:
        return self.info.kind

    # ------------------------------------------------------------------
    # publishing
    # ------------------------------------------------------------------
    def push_image(
        self,
        repository: str,
        tag: str,
        mlist: ManifestList,
        blobs: Iterable[BlobRecord] = (),
    ) -> str:
        """Publish a multi-arch image under ``repository:tag``.

        ``blobs`` must cover every layer and config referenced by the
        manifests; missing blobs make the push fail atomically (nothing
        is published), mirroring the registry API's completeness check.
        """
        staged = {blob.digest: blob for blob in blobs}
        missing: List[str] = []
        for manifest in mlist.manifests:
            for needed in [manifest.config_digest, *manifest.layer_digests()]:
                if needed not in staged and needed not in self.blobs:
                    missing.append(needed)
        if missing:
            raise RegistryError(
                f"push of {repository}:{tag} to {self.name} missing blobs: "
                f"{sorted(set(missing))}"
            )
        for blob in staged.values():
            self.blobs.put_record(blob)
        repo = self.repositories.get_or_create(repository)
        return repo.put_manifest_list(tag, mlist)

    # ------------------------------------------------------------------
    # pull protocol
    # ------------------------------------------------------------------
    def resolve(self, ref: ImageReference, arch: Arch) -> ImageManifest:
        """Steps 1–2: reference → platform manifest for ``arch``."""
        repo = self.repositories.get(ref.repository)
        mlist = repo.resolve_list(ref.tag)
        if not mlist.supports(arch):
            raise ManifestNotFound(
                f"{self.name}/{ref}: no {arch.value} platform "
                f"(has {[a.value for a in mlist.architectures()]})"
            )
        self._pull_count[str(ref)] = self._pull_count.get(str(ref), 0) + 1
        return mlist.for_arch(arch)

    def fetch_blob(self, digest: str) -> BlobRecord:
        """Step 3: blob by digest."""
        return self.blobs.get(digest)

    def has_image(self, ref: ImageReference, arch: Arch) -> bool:
        """Whether a pull of ``ref`` for ``arch`` would succeed."""
        try:
            manifest = self.resolve(ref, arch)
            # resolve() counts as a pull; undo the accounting for a probe.
            self._pull_count[str(ref)] -= 1
        except (ManifestNotFound, KeyError):
            return False
        return all(d in self.blobs for d in manifest.layer_digests())

    def pull_count(self, ref: ImageReference) -> int:
        """How many times ``ref`` was resolved (mirrors Hub rate metering)."""
        return self._pull_count.get(str(ref), 0)

    def meter_pull(self, client: str, now_s: float) -> None:
        """Hook for pull metering; the base registry does not meter."""

    def catalog(self) -> List[str]:
        """Repository names (the ``/v2/_catalog`` endpoint)."""
        return self.repositories.names()

    def storage_bytes(self) -> int:
        """Bytes occupied by unique blobs (dedup applied)."""
        return self.blobs.total_bytes()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r}, repos={len(self.repositories)})"


def mirror_image(
    source: Registry,
    target: Registry,
    repository: str,
    tag: str,
    target_repository: Optional[str] = None,
) -> str:
    """Copy an image (manifests + blobs) between registries.

    This is how the paper's regional registry is provisioned: images
    are mirrored from Docker Hub into the MinIO-backed edge registry.
    Blobs already present in the target are skipped (content addressing
    makes the copy incremental).
    """
    repo = source.repositories.get(repository)
    mlist = repo.resolve_list(tag)
    needed: List[str] = []
    for manifest in mlist.manifests:
        needed.append(manifest.config_digest)
        needed.extend(manifest.layer_digests())
    records = [source.blobs.get(d) for d in dict.fromkeys(needed)]
    return target.push_image(target_repository or repository, tag, mlist, records)
